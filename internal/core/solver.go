package core

import (
	"ipcp/internal/core/lattice"
	"ipcp/internal/ir"
	"ipcp/internal/sym"
)

// vals holds the VAL sets of stage 3: the best current approximation of
// every formal's and every global's value on entry to each procedure.
type vals struct {
	formals map[*ir.Proc][]lattice.Value
	globals map[*ir.Proc][]lattice.Value // parallel Program.ScalarGlobals
}

// procEnv adapts one procedure's VAL set to sym.Env for jump-function
// evaluation.
type procEnv struct {
	p  *propagation
	at *ir.Proc
}

func (e procEnv) FormalValue(i int) lattice.Value {
	f := e.p.vals.formals[e.at]
	if i < 0 || i >= len(f) {
		return lattice.Bottom
	}
	return f[i]
}

func (e procEnv) GlobalValue(g *ir.GlobalVar) lattice.Value {
	gi, ok := e.p.globalIndex[g]
	if !ok {
		return lattice.Bottom
	}
	return e.p.vals.globals[e.at][gi]
}

// stage3Propagate runs the iterative worklist propagation of §4.1: meet
// the jump-function values flowing along every call edge into the
// callee's VAL set, re-evaluating the jump functions of a procedure
// whenever its own VAL set lowers, until a fixed point.
//
// This is the "simple worklist iterative scheme" the paper used; the
// bounded lattice depth guarantees each VAL entry lowers at most twice,
// so termination is immediate.
//
// The loop polls the cancellation hook once per work item, so a served
// analysis whose deadline expires abandons the solve within one
// procedure visit.
//
// A warm-started run (warm.go) begins from the previous fixpoint
// instead of ⊤ everywhere: only the re-solve cone starts at its
// initial cells, and the initial worklist shrinks to the reachable
// cone members plus their boundary callers — the callers outside the
// cone whose sites must re-fire to lower the reset cells. Boundary
// sites into warm callees re-evaluate to their previous contributions
// and meet as no-ops.
func (p *propagation) stage3Propagate() error {
	p.initVals()
	if p.prog.Main == nil {
		return nil
	}
	cone := p.warmPrep()

	// Every procedure reachable from main is visited at least once
	// (its call sites must fire even when its own VAL set never
	// lowers); procedures never called stay at ⊤ and their call sites
	// never fire, preserving the paper's "⊤ only if never called".
	reach := p.cg.ReachableFromMain()
	var work []*ir.Proc
	queued := make(map[*ir.Proc]bool, len(reach))
	for _, proc := range p.prog.Procs {
		if !reach[proc] {
			continue
		}
		if cone != nil && !cone[proc] && !p.callsIntoCone(cone, proc) {
			continue
		}
		work = append(work, proc)
		queued[proc] = true
	}
	p.seeded = int64(len(work))
	watch := newDescentWatcher(p.cfg.Debug, "worklist")
	for len(work) > 0 {
		if p.cancel != nil {
			if err := p.cancel(); err != nil {
				return err
			}
		}
		proc := work[0]
		work = work[1:]
		queued[proc] = false
		p.solverPasses.Add(1)
		p.visited.Add(1)

		env := procEnv{p: p, at: proc}
		for _, b := range proc.Blocks {
			for _, call := range b.Instrs {
				if call.Op != ir.OpCall {
					continue
				}
				site := p.sites[call]
				if site == nil {
					continue
				}
				callee := call.Callee
				changed := false
				cf := p.vals.formals[callee]
				for i := range site.Formal {
					if i >= len(cf) || cf[i].IsBottom() {
						continue
					}
					v := p.evalJF(site.Formal[i], env)
					nv := lattice.Meet(cf[i], v)
					if !nv.Equal(cf[i]) {
						watch.observe(callee, "formal", i, cf[i], nv)
						cf[i] = nv
						changed = true
					}
				}
				cg := p.vals.globals[callee]
				for k := range site.Global {
					if cg[k].IsBottom() {
						continue
					}
					v := p.evalJF(site.Global[k], env)
					nv := lattice.Meet(cg[k], v)
					if !nv.Equal(cg[k]) {
						watch.observe(callee, "global", k, cg[k], nv)
						cg[k] = nv
						changed = true
					}
				}
				if changed && !queued[callee] {
					queued[callee] = true
					work = append(work, callee)
					p.enqueued.Add(1)
				}
			}
		}
	}
	return nil
}

// evalJF evaluates one jump function under the caller's VAL set. A nil
// jump function is ⊥. The counter is atomic so the tally stays exact
// even if a future solver evaluates jump functions concurrently.
func (p *propagation) evalJF(jf sym.Expr, env sym.Env) lattice.Value {
	p.jfEvals.Add(1)
	if jf == nil {
		return lattice.Bottom
	}
	return sym.Eval(jf, env)
}
