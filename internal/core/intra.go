package core

import (
	"ipcp/internal/analysis/sccp"
	"ipcp/internal/ir"
	"ipcp/internal/ir/irbuild"
	"ipcp/internal/mf/sema"
	"ipcp/internal/pass"
)

// IntraResult is the outcome of the purely intraprocedural baseline
// (Table 3, column 4).
type IntraResult struct {
	// Substituted maps procedure names to the number of variable
	// references each procedure's local propagation proves constant and
	// substitutes.
	Substituted map[string]int

	// TotalSubstituted is the program-wide count.
	TotalSubstituted int
}

// AnalyzeIntraprocedural runs a strictly intraprocedural constant
// propagation on every procedure: no constants cross procedure
// boundaries, but interprocedural MOD information is used at call sites
// ("For fair comparison, MOD information was used in the intraprocedural
// propagation", §4.2). The count is the number of variable references
// replaced by constants the local propagation discovers.
func AnalyzeIntraprocedural(sp *sema.Program) *IntraResult {
	return AnalyzeIntraproceduralIR(irbuild.Build(sp))
}

// AnalyzeIntraproceduralIR is AnalyzeIntraprocedural over an
// already-lowered (pre-SSA) program; the procedure-integration baseline
// uses it on inlined programs.
func AnalyzeIntraproceduralIR(irp *ir.Program) *IntraResult {
	ctx := pass.NewContext(irp)
	sp := sccp.NewPass()
	if err := pass.Run(ctx, pass.NewRegistry(), pass.NewPipeline("intraprocedural", sp)); err != nil {
		panic("core: " + err.Error())
	}
	oracle := ctx.ModRef().Oracle()
	res := &IntraResult{Substituted: make(map[string]int, len(irp.Procs))}
	for _, proc := range irp.Procs {
		n := countIntraSubstitutions(proc, sp.Results()[proc], oracle)
		res.Substituted[proc.Name] = n
		res.TotalSubstituted += n
	}
	return res
}

// countIntraSubstitutions counts textual variable references whose value
// SCCP proves to be an integer constant. The same exclusions as the
// interprocedural counter apply (synthetic uses, phi arguments, and
// by-reference actuals the callee may modify), so Table 3's columns are
// commensurable.
func countIntraSubstitutions(proc *ir.Proc, sres *sccp.Result, oracle ir.ModOracle) int {
	count := 0
	for _, b := range proc.Blocks {
		if !sres.Reachable[b] {
			continue
		}
		for _, i := range b.Instrs {
			if i.Op == ir.OpPhi {
				continue
			}
			for a := range i.Args {
				op := &i.Args[a]
				if op.Synthetic || op.Val == nil {
					continue
				}
				if _, ok := sres.ValueOf(op.Val).IntConst(); !ok {
					continue
				}
				// Temps are expression-internal; the source reference
				// being replaced is the variable the temp chain started
				// from, so count only named-variable reads.
				if op.Val.Var.Kind == ir.TempVar {
					continue
				}
				if i.Op == ir.OpCall && a < i.NumActuals && isByRefModified(oracle, i, a) {
					continue
				}
				count++
			}
		}
	}
	return count
}
