// Package core implements the interprocedural constant propagation
// framework of Callahan, Cooper, Kennedy & Torczon as studied by Grove &
// Torczon (PLDI 1993): the four-stage pipeline of §4.1 —
//
//	stage 1  generate return jump functions (bottom-up over the call graph)
//	stage 2  generate forward jump functions (value numbering per procedure)
//	stage 3  propagate VAL sets around the call graph (iterative worklist)
//	stage 4  record the CONSTANTS(p) sets and count substitutions
//
// A Config chooses the forward jump-function flavor, toggles return jump
// functions and MOD information, and optionally iterates the whole
// propagation with dead-code elimination ("complete propagation").
package core

import (
	"errors"
	"sort"
	"sync/atomic"

	"ipcp/internal/analysis/callgraph"
	"ipcp/internal/analysis/modref"
	"ipcp/internal/analysis/valnum"
	"ipcp/internal/core/jump"
	"ipcp/internal/core/lattice"
	"ipcp/internal/ir"
	"ipcp/internal/ir/irbuild"
	"ipcp/internal/mf/sema"
	"ipcp/internal/pass"
	"ipcp/internal/sym"
)

// Config selects an analysis configuration (one column of the paper's
// Tables 2–3).
type Config struct {
	// Jump is the forward jump-function flavor.
	Jump jump.Kind

	// ReturnJFs enables return jump functions (§3.2).
	ReturnJFs bool

	// MOD enables interprocedural MOD summaries; when false the
	// analysis makes worst-case assumptions at every call site
	// (Table 3, column 1).
	MOD bool

	// Complete iterates propagation with dead-code elimination until no
	// dead code is found (Table 3, column 3).
	Complete bool

	// MaxDCERounds bounds the complete-propagation iteration
	// (default 10). The paper observed convergence after one round.
	MaxDCERounds int

	// DependenceSolver selects the Callahan et al. dependence-driven
	// propagation algorithm instead of the paper's simple worklist.
	// Both compute identical VAL sets; the dependence-driven one
	// re-evaluates each jump function only when a support member
	// changes, achieving the O(Σ cost(J)) bound of §3.1.5.
	DependenceSolver bool

	// NoWarmStart disables demand-driven re-solving in incremental
	// runs: stage 3 always solves cold from ⊤ instead of warm-starting
	// from the previous fixpoint. The propagation itself ignores the
	// flag — it solves warm exactly when the incremental driver hands
	// it a Reuse.Warm seed, which the driver only does when this is
	// unset. Results are identical either way; only the solver effort
	// differs.
	NoWarmStart bool

	// Workers bounds the goroutines the per-procedure stages (SSA
	// construction, stage-1 return jump functions, stage-2 forward jump
	// functions) fan out over. 0 means one worker per available CPU;
	// 1 forces the sequential reference path. Results are identical for
	// every setting — the determinism tests prove it.
	Workers int

	// Debug makes the pass runner verify the IR after every pass and
	// fail fast naming the pass that corrupted it.
	Debug bool

	// Cancel, when non-nil, is polled between passes and inside the
	// stage-3 solver loops; a non-nil return (it must wrap ErrCanceled)
	// aborts the analysis with that error. Drivers wire request
	// deadlines through it — see AnalyzeErr. The zero value is an
	// uncancellable run with no polling overhead.
	Cancel func() error
}

// NamedConstant is one (name, value) member of a CONSTANTS(p) set.
type NamedConstant struct {
	Name   string
	Global bool
	Value  int64
}

// ProcResult is the outcome for one procedure.
type ProcResult struct {
	Name string

	// FormalVals holds the final lattice value of each formal (array
	// formals stay ⊥).
	FormalVals []lattice.Value

	// GlobalVals holds the final lattice value of each scalar global on
	// entry, parallel to Program.ScalarGlobals.
	GlobalVals []lattice.Value

	// Constants is CONSTANTS(p): the formals and globals with constant
	// entry values, sorted by name.
	Constants []NamedConstant

	// Substituted counts the textual references to members of
	// CONSTANTS(p) that the transformer replaces with literals — the
	// Metzger–Stroud metric the paper's tables report.
	Substituted int

	// ControlFlowSubstituted counts the subset of Substituted that sits
	// in loop bounds, strides, or branch conditions — the references
	// §4 says the study cared most about.
	ControlFlowSubstituted int
}

// Result is the outcome of one analysis configuration over one program.
type Result struct {
	Config Config

	// Prog is the analyzed IR (the DCE-transformed program for complete
	// propagation).
	Prog *ir.Program

	// Procs maps procedure names to their results.
	Procs map[string]*ProcResult

	// TotalSubstituted is the program-wide substitution count (one cell
	// of Table 2 / Table 3).
	TotalSubstituted int

	// TotalConstants is the number of (procedure, name) pairs in all
	// CONSTANTS sets.
	TotalConstants int

	// TotalControlFlow is the program-wide count of substituted
	// references that sit in loop bounds or branch conditions.
	TotalControlFlow int

	// SolverPasses counts procedure visits during stage 3.
	SolverPasses int

	// JFEvaluations counts jump-function evaluations during stage 3.
	JFEvaluations int

	// DCERounds counts complete-propagation rounds that found and
	// removed dead code.
	DCERounds int

	// SiteVals records, for every call site, the jump-function values
	// that flowed along that edge under the final VAL sets. The
	// procedure-cloning extension partitions call sites by these
	// vectors.
	SiteVals map[*ir.Instr]*SiteValues

	// JFShape tallies the forward jump functions by syntactic form —
	// the data behind §3.1.5's observation that "the number of complex
	// polynomial jump functions actually constructed is small" and that
	// their support size approaches 1.
	JFShape JFShapeStats

	// Stats reports the pipeline's execution effort (solver counters
	// and the worker pool size the per-procedure stages ran on).
	Stats Stats
}

// Stats describes how one analysis run executed. The solver counters
// are accumulated atomically, so they stay race-free if a future change
// parallelizes propagation — and because stage 3 is sequential today,
// they are bit-identical between sequential and parallel runs of the
// same configuration (the determinism tests include them).
type Stats struct {
	// Workers is the resolved worker-pool size stages 1–2 fanned out on.
	Workers int

	// SolverPasses counts work-item visits during stage 3 (procedures
	// for the simple worklist, jump-function instances for the
	// dependence-driven solver).
	SolverPasses int64

	// JFEvaluations counts jump-function evaluations during stage 3.
	JFEvaluations int64

	// Passes is the pass-manager trace of the run: one entry per pass
	// execution plus one summary per fixpoint, in completion order.
	// Every field except the wall-clock Nanos is deterministic.
	Passes []pass.Stat
}

// JFShapeStats classifies constructed forward jump functions.
type JFShapeStats struct {
	Bottom      int // ⊥: nothing propagates along this binding
	Constant    int // a known constant
	PassThrough int // exactly one incoming formal or global
	Polynomial  int // a genuine expression over ≥1 inputs

	// SupportSum accumulates |support(J)| over non-constant, non-⊥
	// jump functions; SupportSum / (PassThrough + Polynomial) is the
	// paper's "|support| approaches 1" metric.
	SupportSum int
}

// SiteValues is the evaluated jump-function vector of one call site:
// one lattice value per callee formal and one per scalar global.
type SiteValues struct {
	Formals []lattice.Value
	Globals []lattice.Value
}

// ErrCanceled is the sentinel a Config.Cancel hook wraps: an analysis
// aborted by its caller (a context deadline or cancellation), as
// opposed to an internal invariant violation (which still panics).
var ErrCanceled = errors.New("analysis canceled")

// Analyze runs the configured interprocedural constant propagation over
// an analyzed source program. Each invocation lowers a fresh IR, so a
// single *sema.Program can be analyzed under many configurations.
// cfg.Cancel must be nil — cancellable callers use AnalyzeErr.
func Analyze(sp *sema.Program, cfg Config) *Result {
	res, err := AnalyzeErr(sp, cfg)
	if err != nil {
		// Only a Cancel hook can produce an error here.
		panic("core: Analyze with a Cancel hook: " + err.Error())
	}
	return res
}

// AnalyzeErr is Analyze for cancellable runs: when cfg.Cancel reports
// cancellation mid-analysis, it returns nil and that error. With a nil
// Cancel hook it never fails.
func AnalyzeErr(sp *sema.Program, cfg Config) (*Result, error) {
	return analyzeConfigured(irbuild.Build(sp), cfg.withDefaults())
}

// withDefaults fills the defaulted Config fields.
func (cfg Config) withDefaults() Config {
	if cfg.MaxDCERounds == 0 {
		cfg.MaxDCERounds = 10
	}
	return cfg
}

// analyzeConfigured runs one full configured analysis over a fresh
// pre-SSA program by executing the declared pass plan: a plain
// propagation pipeline, or — for complete propagation — a verified
// fixpoint of DCE whose ipcp-result requirement re-runs propagation
// each round (the paper resets every lattice value to ⊤ and propagates
// again from scratch on the cleaned program). cfg must already have
// its defaults filled.
func analyzeConfigured(irp *ir.Program, cfg Config) (*Result, error) {
	return runPlan(newPlan(cfg), pass.NewContext(irp), cfg)
}

// runPlan executes a declared plan over a prepared Context and collects
// the result — the shared tail of the scratch and seeded entry points.
// Cancellation (an error wrapping ErrCanceled, necessarily from the
// Config.Cancel hook) is returned; any other pipeline error is an
// invariant violation (a pass that never converges, or corrupts the IR
// under Debug), not a user error, and panics loudly.
func runPlan(pl *plan, ctx *pass.Context, cfg Config) (*Result, error) {
	ctx.Debug = cfg.Debug
	ctx.Cancel = cfg.Cancel
	if err := pass.Run(ctx, pl.reg, pl.root); err != nil {
		if errors.Is(err, ErrCanceled) {
			return nil, err
		}
		panic("core: " + err.Error())
	}
	res := pl.prop.Result()
	if pl.fix != nil {
		res.DCERounds = pl.fix.Rounds()
	}
	res.Stats.Passes = ctx.PassStats()
	return res, nil
}

// AnalyzeMatrix analyzes one program under every configuration of the
// matrix, fanning the configurations out over a bounded worker pool
// (workers <= 0 means one per CPU). The source program is lowered once;
// each configuration then runs on its own deep clone of that IR, so the
// workers share only immutable inputs. Results arrive in configuration
// order and are identical to running Analyze per configuration — the
// determinism tests assert it across the full config matrix.
func AnalyzeMatrix(sp *sema.Program, cfgs []Config, workers int) []*Result {
	out, err := AnalyzeMatrixErr(sp, cfgs, workers)
	if err != nil {
		panic("core: AnalyzeMatrix with a Cancel hook: " + err.Error())
	}
	return out
}

// AnalyzeMatrixErr is AnalyzeMatrix for cancellable runs: if any
// configuration's Cancel hook fires, the whole matrix is abandoned and
// the lowest-indexed error is returned (results are nil). With nil
// Cancel hooks it never fails.
func AnalyzeMatrixErr(sp *sema.Program, cfgs []Config, workers int) ([]*Result, error) {
	if len(cfgs) == 0 {
		return nil, nil
	}
	base := irbuild.Build(sp)
	out := make([]*Result, len(cfgs))
	errs := make([]error, len(cfgs))
	parallelFor(poolSize(workers), len(cfgs), func(i int) {
		irp := base
		if len(cfgs) > 1 {
			// BuildSSA mutates the IR in place, so every configuration
			// after the first needs its own copy of the lowering.
			irp = ir.CloneProgram(base, nil, nil)
		}
		out[i], errs[i] = analyzeConfigured(irp, cfgs[i].withDefaults())
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// AnalyzeIR runs one propagation (never the complete-propagation
// iteration) over an already-lowered program. The program must be
// fresh (pre-SSA); Analyze is the usual entry point.
func AnalyzeIR(irp *ir.Program, cfg Config) *Result {
	cfg = cfg.withDefaults()
	ctx := pass.NewContext(irp)
	ctx.Debug = cfg.Debug
	prop := NewPropagate(cfg)
	if err := pass.Run(ctx, pass.NewRegistry(), pass.NewPipeline("propagation", prop)); err != nil {
		panic("core: " + err.Error())
	}
	res := prop.Result()
	res.Stats.Passes = ctx.PassStats()
	return res
}

// pipeline carries the per-run state between stages.
type propagation struct {
	cfg     Config
	workers int // resolved pool size for the per-procedure stages
	prog    *ir.Program
	cg      *callgraph.Graph
	mods    *modref.Summary

	oracle      ir.ModOracle
	globalIndex map[*ir.GlobalVar]int

	// reuse maps procedures whose stage-1/stage-2 outputs are injected
	// from stored summaries instead of derived (nil outside incremental
	// runs). See reuse.go.
	reuse map[*ir.Proc]*ProcSeed

	retJFs *jump.Store
	vns    map[*ir.Proc]*valnum.Result
	sites  map[*ir.Instr]*jump.Site

	vals         *vals
	solverPasses atomic.Int64
	jfEvals      atomic.Int64
	jfShape      JFShapeStats

	// Warm-start state (warm.go): the previous fixpoint injected for
	// the capture run of an incremental analysis (nil = cold solve),
	// the cached per-procedure jump-function fingerprints, and the
	// stage-3 worklist counters the incremental driver surfaces.
	warm        *WarmSeed
	siteHash    map[string]string
	seeded      int64
	visited     atomic.Int64
	enqueued    atomic.Int64
	warmStarted bool
	coneProcs   int

	// cancel is the pass Context's cancellation hook (nil when the run
	// is uncancellable); the stage-3 worklist loops poll it per item.
	cancel func() error
}

// newPropagation assembles the per-run stage state. cg and mods are
// the whole-program caches, normally supplied by the pass Context so
// repeated propagations over the same program share them; nil means
// build fresh (the callgraph must come from the pre-SSA program, so it
// is taken before any stage runs). reuse — normally nil — injects
// stored summaries for unchanged procedures (reuse.go).
func newPropagation(irp *ir.Program, cfg Config, cg *callgraph.Graph, mods *modref.Summary, reuse map[*ir.Proc]*ProcSeed) *propagation {
	if cg == nil {
		cg = callgraph.Build(irp)
	}
	if mods == nil {
		mods = modref.Compute(irp, cg)
	}
	p := &propagation{
		cfg:         cfg,
		workers:     poolSize(cfg.Workers),
		prog:        irp,
		cg:          cg,
		mods:        mods,
		reuse:       reuse,
		globalIndex: make(map[*ir.GlobalVar]int, len(irp.ScalarGlobals)),
		vns:         make(map[*ir.Proc]*valnum.Result, len(irp.Procs)),
		sites:       make(map[*ir.Instr]*jump.Site),
	}
	for i, g := range irp.ScalarGlobals {
		p.globalIndex[g] = i
	}
	p.oracle = ir.WorstCase
	if cfg.MOD {
		p.oracle = p.mods.Oracle()
	}
	return p
}

// buildSSA converts every procedure to SSA form, fanning out over the
// worker pool: BuildSSA mutates only its own procedure and the MOD
// oracle is read-only, so the procedures are independent.
//
// Seeded procedures skip SSA construction: their jump functions come
// from the seed and their substitution counts replay cached use
// vectors, so nothing downstream reads their SSA state — except
// complete mode, whose dead-code elimination runs SCCP over every
// procedure's entry values, so there everyone is converted.
func (p *propagation) buildSSA() {
	procs := p.prog.Procs
	parallelFor(p.workers, len(procs), func(i int) {
		if !p.cfg.Complete {
			if seed := p.reuse[procs[i]]; seed != nil && seed.Uses != nil {
				procs[i].ElidedPhis = seed.Uses.Phis
				return
			}
		}
		procs[i].BuildSSA(p.oracle)
	})
}

// stage1ReturnJFs value-numbers every procedure bottom-up over the call
// graph, building return jump functions as it goes so callers see their
// callees' summaries (§4.1, "Generating return jump functions").
// Procedures in call-graph cycles get no return jump functions (⊥).
//
// The bottom-up order is relaxed to waves over the call-graph
// condensation (see parallel.go): procedures inside one wave have no
// finished callee summaries to exchange, so they value-number in
// parallel; the summaries a wave produced are published sequentially
// before the next wave starts. Without return jump functions there are
// no cross-procedure reads at all and the whole stage is one wave.
func (p *propagation) stage1ReturnJFs() {
	p.retJFs = jump.NewStore(p.prog)
	// Reused procedures publish their stored return jump functions up
	// front: a summary is injected only when the procedure's whole
	// forward cone is unchanged (internal/incr's invalidation rule), so
	// the stored functions are exactly what re-deriving would produce,
	// and publishing before the waves keeps every caller's view
	// identical to the scratch schedule.
	if p.cfg.ReturnJFs {
		for proc, seed := range p.reuse {
			if seed.Returns != nil {
				p.retJFs.Set(proc, seed.Returns)
			}
		}
	}
	var re valnum.ReturnEval
	if p.cfg.ReturnJFs {
		re = p.retJFs
	}
	// Without return jump functions nothing crosses procedures and one
	// wave covers everything; with them, the wave schedule guarantees a
	// caller never runs before its callees' summaries are published.
	waves := [][]*callgraph.Node{p.cg.BottomUp()}
	if p.cfg.ReturnJFs {
		waves = sccWaves(p.cg)
	}
	for _, wave := range waves {
		vns := make([]*valnum.Result, len(wave))
		rets := make([]*jump.Returns, len(wave))
		parallelFor(p.workers, len(wave), func(i int) {
			n := wave[i]
			if p.reuse[n.Proc] != nil {
				return // summary injected; nothing to derive
			}
			vns[i] = valnum.Analyze(n.Proc, re)
			if p.cfg.ReturnJFs && !p.cg.InCycle(n) {
				rets[i] = p.buildReturns(n.Proc, vns[i])
			}
		})
		for i, n := range wave {
			if vns[i] != nil {
				p.vns[n.Proc] = vns[i]
			}
			if rets[i] != nil {
				p.retJFs.Set(n.Proc, rets[i])
			}
		}
	}
}

// buildReturns derives a procedure's return jump functions from the
// value-numbered expressions of its Ret operands: the exit value of each
// binding must agree (be congruent) across every RETURN and be a closed
// polynomial over the procedure's entry values.
func (p *propagation) buildReturns(proc *ir.Proc, vn *valnum.Result) *jump.Returns {
	r := &jump.Returns{
		Formal: make([]sym.Expr, len(proc.Formals)),
		Global: make(map[*ir.GlobalVar]sym.Expr),
	}
	var rets []*ir.Instr
	for _, b := range proc.Blocks {
		if t := b.Terminator(); t != nil && t.Op == ir.OpRet {
			rets = append(rets, t)
		}
	}
	if len(rets) == 0 {
		return r // procedure never returns: all ⊥
	}
	for pos, v := range proc.RetVars {
		var acc sym.Expr
		ok := true
		for ri, ret := range rets {
			e := vn.OperandExpr(ret.Args[pos])
			if e == nil {
				ok = false
				break
			}
			if ri == 0 {
				acc = e
				continue
			}
			if !sym.Equal(acc, e) {
				ok = false
				break
			}
		}
		if !ok || acc == nil || !sym.IsClosed(acc) {
			continue
		}
		// Return jump functions over entry values (identity and
		// polynomial forms) assert which bindings the procedure leaves
		// unmodified — that assertion *is* MOD information. In the
		// no-MOD configuration (Table 3, column 1) only constant-valued
		// return jump functions are available.
		if !p.cfg.MOD {
			if _, isConst := acc.(*sym.Const); !isConst {
				continue
			}
		}
		switch v.Kind {
		case ir.ResultVar:
			r.Result = acc
		case ir.FormalVar:
			r.Formal[v.Index] = acc
		case ir.GlobalRefVar:
			r.Global[v.Global] = acc
		}
	}
	return r
}

// stage2ForwardJFs builds the configured flavor of forward jump function
// for every actual parameter and every implicit global at every call
// site, reusing the stage-1 value numbering (valid because return jump
// functions are final once stage 1 completes). Procedures are fully
// independent here — every worker reads only its own procedure's value
// numbering — so the fan-out needs no waves; per-procedure results land
// in indexed slots and merge in call-graph order.
func (p *propagation) stage2ForwardJFs() {
	nodes := p.cg.TopDown()
	type procSites struct {
		sites []*jump.Site
		shape JFShapeStats
	}
	out := make([]procSites, len(nodes))
	parallelFor(p.workers, len(nodes), func(ni int) {
		n := nodes[ni]
		ps := &out[ni]
		if seed := p.reuse[n.Proc]; seed != nil {
			// Replay the stored jump functions through the exact loop
			// structure of the derivation below, so the shape tally
			// (which skips array formals and truncated global slots)
			// matches a scratch run bit for bit.
			for si, call := range n.Sites {
				ss := seed.Sites[si]
				site := &jump.Site{Call: call, Formal: ss.Formal, Global: ss.Global}
				for i := 0; i < call.NumActuals && i < len(call.Callee.Formals); i++ {
					if call.Callee.Formals[i].Type.IsArray() {
						continue
					}
					ps.shape.classify(site.Formal[i])
				}
				for k := range p.prog.ScalarGlobals {
					if call.NumActuals+k >= len(call.Args) {
						break
					}
					ps.shape.classify(site.Global[k])
				}
				ps.sites = append(ps.sites, site)
			}
			return
		}
		vn := p.vns[n.Proc]
		for _, call := range n.Sites {
			site := &jump.Site{
				Call:   call,
				Formal: make([]sym.Expr, len(call.Callee.Formals)),
				Global: make([]sym.Expr, len(p.prog.ScalarGlobals)),
			}
			for i := 0; i < call.NumActuals && i < len(call.Callee.Formals); i++ {
				if call.Callee.Formals[i].Type.IsArray() {
					continue // arrays carry no constants
				}
				raw := vn.OperandExpr(call.Args[i])
				site.Formal[i] = jump.Filter(p.cfg.Jump, call.Args[i], raw)
				ps.shape.classify(site.Formal[i])
			}
			for k := range p.prog.ScalarGlobals {
				a := call.NumActuals + k
				if a >= len(call.Args) {
					break
				}
				raw := vn.OperandExpr(call.Args[a])
				site.Global[k] = jump.Filter(p.cfg.Jump, call.Args[a], raw)
				ps.shape.classify(site.Global[k])
			}
			ps.sites = append(ps.sites, site)
		}
	})
	for _, ps := range out {
		for _, site := range ps.sites {
			p.sites[site.Call] = site
		}
		p.jfShape.add(ps.shape)
	}
}

// classify tallies one constructed forward jump function by form.
func (s *JFShapeStats) classify(e sym.Expr) {
	switch e := e.(type) {
	case nil:
		s.Bottom++
	case *sym.Const:
		s.Constant++
	case *sym.Formal, *sym.GlobalEntry:
		s.PassThrough++
		s.SupportSum++
	default:
		s.Polynomial++
		leaves, _ := sym.Support(e)
		s.SupportSum += len(leaves)
	}
}

// add accumulates another tally into s.
func (s *JFShapeStats) add(o JFShapeStats) {
	s.Bottom += o.Bottom
	s.Constant += o.Constant
	s.PassThrough += o.PassThrough
	s.Polynomial += o.Polynomial
	s.SupportSum += o.SupportSum
}

// stage4Record assembles the CONSTANTS sets and the substitution counts.
func (p *propagation) stage4Record() *Result {
	res := &Result{
		Config:        p.cfg,
		Prog:          p.prog,
		Procs:         make(map[string]*ProcResult, len(p.prog.Procs)),
		SolverPasses:  int(p.solverPasses.Load()),
		JFEvaluations: int(p.jfEvals.Load()),
		SiteVals:      make(map[*ir.Instr]*SiteValues, len(p.sites)),
		JFShape:       p.jfShape,
		Stats: Stats{
			Workers:       p.workers,
			SolverPasses:  p.solverPasses.Load(),
			JFEvaluations: p.jfEvals.Load(),
		},
	}
	// Per-site jump-function values under the final VAL sets, for the
	// cloning extension.
	reach := p.cg.ReachableFromMain()
	for _, n := range p.cg.TopDown() {
		if !reach[n.Proc] {
			continue
		}
		env := procEnv{p: p, at: n.Proc}
		for _, call := range n.Sites {
			site := p.sites[call]
			if site == nil {
				continue
			}
			sv := &SiteValues{
				Formals: make([]lattice.Value, len(site.Formal)),
				Globals: make([]lattice.Value, len(site.Global)),
			}
			for i, e := range site.Formal {
				//lint:ignore latticeflow post-fixpoint recording into a freshly allocated result vector, not a live VAL cell
				sv.Formals[i] = sym.Eval(e, env)
			}
			for k, e := range site.Global {
				//lint:ignore latticeflow post-fixpoint recording into a freshly allocated result vector, not a live VAL cell
				sv.Globals[k] = sym.Eval(e, env)
			}
			res.SiteVals[call] = sv
		}
	}
	for _, proc := range p.prog.Procs {
		pr := &ProcResult{
			Name:       proc.Name,
			FormalVals: p.vals.formals[proc],
			GlobalVals: p.vals.globals[proc],
		}
		for i, f := range proc.Formals {
			if c, ok := pr.FormalVals[i].IntConst(); ok {
				pr.Constants = append(pr.Constants, NamedConstant{Name: f.Name, Value: c})
			}
		}
		for k, g := range p.prog.ScalarGlobals {
			if c, ok := pr.GlobalVals[k].IntConst(); ok {
				pr.Constants = append(pr.Constants, NamedConstant{Name: g.String(), Global: true, Value: c})
			}
		}
		sort.Slice(pr.Constants, func(i, j int) bool { return pr.Constants[i].Name < pr.Constants[j].Name })
		pr.Substituted, pr.ControlFlowSubstituted = p.countSubstitutions(proc)
		res.Procs[proc.Name] = pr
		res.TotalSubstituted += pr.Substituted
		res.TotalControlFlow += pr.ControlFlowSubstituted
		res.TotalConstants += len(pr.Constants)
	}
	return res
}
