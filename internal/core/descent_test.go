package core

import (
	"fmt"
	"strings"
	"testing"

	"ipcp/internal/core/lattice"
	"ipcp/internal/ir"
)

// descentSrc lowers S's formal twice — ⊤ → 1 at the first site, then
// 1 → ⊥ at the second — so the watcher observes an update whose old
// value is a constant, the only point a seeded raise is detectable.
const descentSrc = `
PROGRAM MAIN
  CALL S(1)
  CALL S(2)
END
SUBROUTINE S(N)
  INTEGER N, X
  X = N
  RETURN
END
`

// seedDescentFault makes the second lowering of any of S's cells look
// like a raise: once a cell holds a constant, the faulted next value
// is ⊤. The fault perturbs only what the watcher sees, never the
// solve itself.
func seedDescentFault(t *testing.T) {
	t.Helper()
	descentFault = func(proc *ir.Proc, old, next lattice.Value) lattice.Value {
		if proc.Name == "S" && old.IsConst() {
			return lattice.Top
		}
		return next
	}
	t.Cleanup(func() { descentFault = nil })
}

func TestDescentWatcherNamesOffendingProcedure(t *testing.T) {
	for _, dep := range []bool{false, true} {
		solver := "worklist"
		if dep {
			solver = "dependence"
		}
		t.Run(solver, func(t *testing.T) {
			seedDescentFault(t)
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("seeded raise did not trip the descent watcher")
				}
				msg := fmt.Sprint(r)
				if !strings.Contains(msg, `procedure "S"`) {
					t.Fatalf("watcher panic does not name the offending procedure: %s", msg)
				}
				if !strings.Contains(msg, solver+" solver") {
					t.Fatalf("watcher panic does not name the %s solver: %s", solver, msg)
				}
				if !strings.Contains(msg, "monotone-descent violation") {
					t.Fatalf("watcher panic does not state the invariant: %s", msg)
				}
			}()
			analyzeSrc(t, descentSrc, Config{Debug: true, DependenceSolver: dep})
		})
	}
}

// TestDescentWatcherSilentOnHealthySolve proves Debug mode does not
// change results: with no fault seeded, the watched solve completes
// and agrees with the unwatched one.
func TestDescentWatcherSilentOnHealthySolve(t *testing.T) {
	for _, dep := range []bool{false, true} {
		watched := analyzeSrc(t, descentSrc, Config{Debug: true, DependenceSolver: dep})
		plain := analyzeSrc(t, descentSrc, Config{DependenceSolver: dep})
		w, wok := constVal(watched, "S", "N")
		p, pok := constVal(plain, "S", "N")
		if wok != pok || w != p {
			t.Errorf("dep=%v: Debug changed the result: %v,%v vs %v,%v", dep, w, wok, p, pok)
		}
	}
}

// TestDescentWatcherOffWithoutDebug proves the fault hook alone cannot
// fire the watcher: without Config.Debug there is no watcher to see
// the perturbed value.
func TestDescentWatcherOffWithoutDebug(t *testing.T) {
	seedDescentFault(t)
	res := analyzeSrc(t, descentSrc, Config{})
	if res == nil {
		t.Fatal("analysis failed")
	}
}
