package core

import (
	"sync/atomic"
	"testing"

	"ipcp/internal/analysis/callgraph"
	"ipcp/internal/ir/irbuild"
	"ipcp/internal/mf/parser"
	"ipcp/internal/mf/sema"
	"ipcp/internal/suite"
)

// The wave schedule is what makes parallel stage 1 equivalent to the
// sequential bottom-up walk; these tests pin its two load-bearing
// invariants. Breaking either one (say, by leveling nodes instead of
// SCCs, or by publishing summaries inside a wave) would not necessarily
// trip the race detector — it would silently change results — so the
// invariants get direct coverage here in addition to the end-to-end
// differential suite.

func waveGraph(t testing.TB, source string) *callgraph.Graph {
	t.Helper()
	f, err := parser.Parse(source)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sema.Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	return callgraph.Build(irbuild.Build(sp))
}

// TestSCCWavesInvariants checks, over a spread of random call graphs:
// (1) the waves partition the node set exactly, and (2) every callee
// outside a node's own SCC sits in a strictly earlier wave — the
// property that makes deferred publication safe.
func TestSCCWavesInvariants(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		cg := waveGraph(t, suite.Random(seed, int(3+seed%8)).Source)
		waves := sccWaves(cg)

		waveOf := map[*callgraph.Node]int{}
		total := 0
		for w, wave := range waves {
			if len(wave) == 0 {
				t.Fatalf("seed %d: empty wave %d", seed, w)
			}
			for _, n := range wave {
				if _, dup := waveOf[n]; dup {
					t.Fatalf("seed %d: %s appears in two waves", seed, n.Proc.Name)
				}
				waveOf[n] = w
				total++
			}
		}
		if total != len(cg.Nodes) {
			t.Fatalf("seed %d: waves cover %d of %d nodes", seed, total, len(cg.Nodes))
		}
		for n, w := range waveOf {
			for _, m := range n.Callees {
				if m.SCC == n.SCC {
					continue // intra-SCC edges never exchange summaries
				}
				if waveOf[m] >= w {
					t.Fatalf("seed %d: callee %s (wave %d) not before caller %s (wave %d)",
						seed, m.Proc.Name, waveOf[m], n.Proc.Name, w)
				}
			}
		}
	}
}

// TestSCCWavesRecursion pins the wave placement of a recursive clique:
// mutually recursive procedures share an SCC, land in one wave
// together, and their external callee still precedes them.
func TestSCCWavesRecursion(t *testing.T) {
	cg := waveGraph(t, `
PROGRAM P
  CALL A(3)
END
SUBROUTINE A(N)
  INTEGER N
  CALL B(N)
  RETURN
END
SUBROUTINE B(N)
  INTEGER N
  IF (N .GT. 0) THEN
    CALL A(N - 1)
  ENDIF
  CALL LEAF(N)
  RETURN
END
SUBROUTINE LEAF(N)
  INTEGER N
  RETURN
END
`)
	waves := sccWaves(cg)
	waveOf := map[string]int{}
	for w, wave := range waves {
		for _, n := range wave {
			waveOf[n.Proc.Name] = w
		}
	}
	if waveOf["A"] != waveOf["B"] {
		t.Errorf("recursive pair split across waves: A=%d B=%d", waveOf["A"], waveOf["B"])
	}
	if waveOf["LEAF"] >= waveOf["A"] {
		t.Errorf("external callee LEAF (wave %d) not before its recursive callers (wave %d)",
			waveOf["LEAF"], waveOf["A"])
	}
	if waveOf["P"] <= waveOf["A"] {
		t.Errorf("main (wave %d) not after the procedures it calls (wave %d)", waveOf["P"], waveOf["A"])
	}
}

// TestParallelFor covers the pool across worker counts: every index is
// visited exactly once, including the inline workers<=1 path and pools
// wider than the work list.
func TestParallelFor(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8, 64} {
		for _, n := range []int{0, 1, 7, 100} {
			visits := make([]atomic.Int32, n)
			parallelFor(workers, n, func(i int) { visits[i].Add(1) })
			for i := range visits {
				if got := visits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, got)
				}
			}
		}
	}
}

// TestPoolSize pins the Workers resolution rule the Config documents.
func TestPoolSize(t *testing.T) {
	if got := poolSize(3); got != 3 {
		t.Errorf("poolSize(3) = %d", got)
	}
	if got := poolSize(1); got != 1 {
		t.Errorf("poolSize(1) = %d", got)
	}
	if got := poolSize(0); got < 1 {
		t.Errorf("poolSize(0) = %d, want >= 1", got)
	}
	if got := poolSize(-4); got < 1 {
		t.Errorf("poolSize(-4) = %d, want >= 1", got)
	}
}
