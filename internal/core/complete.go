package core

import (
	"fmt"

	"ipcp/internal/analysis/dce"
	"ipcp/internal/analysis/sccp"
	"ipcp/internal/core/lattice"
	"ipcp/internal/ir"
	"ipcp/internal/pass"
)

// dcePass is one round of the paper's complete propagation as a pass:
// it consumes the current propagation result (re-provisioned by the
// runner whenever a previous round replaced the program) and removes
// the code the discovered constants prove dead. Iterated under
// pass.Fixpoint it reproduces Table 3's "complete" column.
type dcePass struct{}

func (d *dcePass) Name() string             { return "dce" }
func (d *dcePass) Requires() []pass.Fact    { return []pass.Fact{FactResult} }
func (d *dcePass) Invalidates() []pass.Fact { return nil } // SetProgram already drops everything

func (d *dcePass) Run(ctx *pass.Context) (bool, error) {
	v, ok := ctx.Fact(FactResult)
	if !ok {
		return false, fmt.Errorf("fact %q missing", FactResult)
	}
	np, changed := eliminateDeadCode(v.(*Result))
	if !changed {
		return false, nil
	}
	ctx.SetProgram(np)
	return true, nil
}

// eliminateDeadCode performs one round of the paper's complete
// propagation (Table 3, column 3): seed each procedure's SCCP with its
// CONSTANTS(p) set, remove the code the constants prove dead, and return
// a fresh pre-SSA program. changed reports whether any procedure lost
// code; the caller then re-propagates from scratch (all values reset to
// ⊤).
func eliminateDeadCode(res *Result) (*ir.Program, bool) {
	prog := res.Prog
	np := ir.NewProgram()
	np.Globals = prog.Globals
	np.ScalarGlobals = prog.ScalarGlobals

	changed := false
	for _, proc := range prog.Procs {
		pr := res.Procs[proc.Name]
		seed := make(map[*ir.Value]lattice.Value)
		for i, f := range proc.Formals {
			if c, ok := pr.FormalVals[i].IntConst(); ok {
				if ev := proc.EntryValues[f]; ev != nil {
					seed[ev] = lattice.OfInt(c)
				}
			}
		}
		for k, gvar := range proc.GlobalVars {
			if c, ok := pr.GlobalVals[k].IntConst(); ok {
				if ev := proc.EntryValues[gvar]; ev != nil {
					seed[ev] = lattice.OfInt(c)
				}
			}
		}
		sres := sccp.Run(proc, seed, nil)
		nproc, stats := dce.Transform(proc, sres, nil)
		if stats.Changed {
			changed = true
		}
		np.AddProc(nproc)
	}
	// Repoint call targets into the new program.
	for _, proc := range np.Procs {
		for _, b := range proc.Blocks {
			for _, i := range b.Instrs {
				if i.Op == ir.OpCall {
					i.Callee = np.ProcByName[i.Callee.Name]
				}
			}
		}
	}
	return np, changed
}
