package core

import (
	"testing"

	"ipcp/internal/core/jump"
	"ipcp/internal/ir"
	"ipcp/internal/ir/irbuild"
	"ipcp/internal/mf/parser"
	"ipcp/internal/mf/sema"
	"ipcp/internal/suite"
)

func benchSema(b *testing.B, name string, scale int) *sema.Program {
	b.Helper()
	f, err := parser.Parse(suite.Generate(name, scale).Source)
	if err != nil {
		b.Fatal(err)
	}
	sp, err := sema.Analyze(f)
	if err != nil {
		b.Fatal(err)
	}
	return sp
}

// prepared builds a pipeline up to (but excluding) stage 3, so the
// solver benchmarks measure propagation alone.
func prepared(b *testing.B, sp *sema.Program, cfg Config) *propagation {
	b.Helper()
	irp := irbuild.Build(sp)
	pipe := newPropagation(irp, cfg, nil, nil, nil)
	pipe.buildSSA()
	pipe.stage1ReturnJFs()
	pipe.stage2ForwardJFs()
	return pipe
}

// BenchmarkSolverSimple measures the paper's simple worklist solver
// (stage 3 only; jump functions prebuilt).
func BenchmarkSolverSimple(b *testing.B) {
	sp := benchSema(b, "ocean", 8)
	cfg := Config{Jump: jump.PassThrough, ReturnJFs: true, MOD: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		pipe := prepared(b, sp, cfg)
		b.StartTimer()
		pipe.stage3Propagate()
	}
}

// BenchmarkSolverDependence measures the Callahan et al. variant on the
// same prebuilt jump functions.
func BenchmarkSolverDependence(b *testing.B) {
	sp := benchSema(b, "ocean", 8)
	cfg := Config{Jump: jump.PassThrough, ReturnJFs: true, MOD: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		pipe := prepared(b, sp, cfg)
		b.StartTimer()
		pipe.stage3PropagateDependence()
	}
}

// BenchmarkStage1ReturnJFs isolates return-jump-function generation
// (which includes the value-numbering pass, the dominant cost per §4.1).
func BenchmarkStage1ReturnJFs(b *testing.B) {
	sp := benchSema(b, "ocean", 8)
	cfg := Config{Jump: jump.PassThrough, ReturnJFs: true, MOD: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		irp := irbuild.Build(sp)
		pipe := newPropagation(irp, cfg, nil, nil, nil)
		pipe.buildSSA()
		b.StartTimer()
		pipe.stage1ReturnJFs()
	}
}

// BenchmarkSubstitutionCount isolates stage 4's reference counting.
func BenchmarkSubstitutionCount(b *testing.B) {
	sp := benchSema(b, "ocean", 8)
	cfg := Config{Jump: jump.PassThrough, ReturnJFs: true, MOD: true}
	pipe := prepared(b, sp, cfg)
	pipe.stage3Propagate()
	b.ReportAllocs()
	total := 0
	for i := 0; i < b.N; i++ {
		total = 0
		for _, proc := range pipe.prog.Procs {
			n, _ := pipe.countSubstitutions(proc)
			total += n
		}
	}
	if total == 0 {
		b.Fatal("no substitutions counted")
	}
	_ = ir.OpAdd
}

// fullMatrix is the 16-configuration sweep of the study (4 flavors ×
// MOD × return jump functions), with every pipeline pinned to the given
// worker count.
func fullMatrix(pipelineWorkers int) []Config {
	var cfgs []Config
	for _, j := range []jump.Kind{jump.Literal, jump.Intraprocedural, jump.PassThrough, jump.Polynomial} {
		for _, mod := range []bool{false, true} {
			for _, ret := range []bool{false, true} {
				cfgs = append(cfgs, Config{Jump: j, MOD: mod, ReturnJFs: ret, Workers: pipelineWorkers})
			}
		}
	}
	return cfgs
}

// BenchmarkAnalyzeMatrix compares the sequential 16-configuration sweep
// (the pre-parallelism code path: one worker everywhere) against the
// parallel matrix runner (configuration-level fan-out over cloned IRs,
// parallel per-procedure stages inside each pipeline). The speedup
// scales with cores; on one core the two are expected to tie, which
// bounds the orchestration overhead.
func BenchmarkAnalyzeMatrix(b *testing.B) {
	sp := benchSema(b, "ocean", 8)
	b.Run("seq", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			AnalyzeMatrix(sp, fullMatrix(1), 1)
		}
	})
	b.Run("par", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			AnalyzeMatrix(sp, fullMatrix(0), 0)
		}
	})
}

// BenchmarkStage2 isolates forward-jump-function generation, the
// fully-independent per-procedure stage, sequential vs parallel.
func BenchmarkStage2(b *testing.B) {
	sp := benchSema(b, "ocean", 8)
	run := func(workers int) func(*testing.B) {
		return func(b *testing.B) {
			cfg := Config{Jump: jump.Polynomial, ReturnJFs: true, MOD: true, Workers: workers}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				pipe := newPropagation(irbuild.Build(sp), cfg, nil, nil, nil)
				pipe.buildSSA()
				pipe.stage1ReturnJFs()
				b.StartTimer()
				pipe.stage2ForwardJFs()
			}
		}
	}
	b.Run("seq", run(1))
	b.Run("par", run(0))
}

// BenchmarkStage1 isolates value numbering + return-jump-function
// generation under the wave schedule, sequential vs parallel.
func BenchmarkStage1(b *testing.B) {
	sp := benchSema(b, "ocean", 8)
	run := func(workers int) func(*testing.B) {
		return func(b *testing.B) {
			cfg := Config{Jump: jump.Polynomial, ReturnJFs: true, MOD: true, Workers: workers}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				pipe := newPropagation(irbuild.Build(sp), cfg, nil, nil, nil)
				pipe.buildSSA()
				b.StartTimer()
				pipe.stage1ReturnJFs()
			}
		}
	}
	b.Run("seq", run(1))
	b.Run("par", run(0))
}
