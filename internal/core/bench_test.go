package core

import (
	"testing"

	"ipcp/internal/core/jump"
	"ipcp/internal/ir"
	"ipcp/internal/ir/irbuild"
	"ipcp/internal/mf/parser"
	"ipcp/internal/mf/sema"
	"ipcp/internal/suite"
)

func benchSema(b *testing.B, name string, scale int) *sema.Program {
	b.Helper()
	f, err := parser.Parse(suite.Generate(name, scale).Source)
	if err != nil {
		b.Fatal(err)
	}
	sp, err := sema.Analyze(f)
	if err != nil {
		b.Fatal(err)
	}
	return sp
}

// prepared builds a pipeline up to (but excluding) stage 3, so the
// solver benchmarks measure propagation alone.
func prepared(b *testing.B, sp *sema.Program, cfg Config) *pipeline {
	b.Helper()
	irp := irbuild.Build(sp)
	pipe := newPipeline(irp, cfg)
	pipe.buildSSA()
	pipe.stage1ReturnJFs()
	pipe.stage2ForwardJFs()
	return pipe
}

// BenchmarkSolverSimple measures the paper's simple worklist solver
// (stage 3 only; jump functions prebuilt).
func BenchmarkSolverSimple(b *testing.B) {
	sp := benchSema(b, "ocean", 8)
	cfg := Config{Jump: jump.PassThrough, ReturnJFs: true, MOD: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		pipe := prepared(b, sp, cfg)
		b.StartTimer()
		pipe.stage3Propagate()
	}
}

// BenchmarkSolverDependence measures the Callahan et al. variant on the
// same prebuilt jump functions.
func BenchmarkSolverDependence(b *testing.B) {
	sp := benchSema(b, "ocean", 8)
	cfg := Config{Jump: jump.PassThrough, ReturnJFs: true, MOD: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		pipe := prepared(b, sp, cfg)
		b.StartTimer()
		pipe.stage3PropagateDependence()
	}
}

// BenchmarkStage1ReturnJFs isolates return-jump-function generation
// (which includes the value-numbering pass, the dominant cost per §4.1).
func BenchmarkStage1ReturnJFs(b *testing.B) {
	sp := benchSema(b, "ocean", 8)
	cfg := Config{Jump: jump.PassThrough, ReturnJFs: true, MOD: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		irp := irbuild.Build(sp)
		pipe := newPipeline(irp, cfg)
		pipe.buildSSA()
		b.StartTimer()
		pipe.stage1ReturnJFs()
	}
}

// BenchmarkSubstitutionCount isolates stage 4's reference counting.
func BenchmarkSubstitutionCount(b *testing.B) {
	sp := benchSema(b, "ocean", 8)
	cfg := Config{Jump: jump.PassThrough, ReturnJFs: true, MOD: true}
	pipe := prepared(b, sp, cfg)
	pipe.stage3Propagate()
	b.ReportAllocs()
	total := 0
	for i := 0; i < b.N; i++ {
		total = 0
		for _, proc := range pipe.prog.Procs {
			n, _ := pipe.countSubstitutions(proc)
			total += n
		}
	}
	if total == 0 {
		b.Fatal("no substitutions counted")
	}
	_ = ir.OpAdd
}
