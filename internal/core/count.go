package core

import (
	"ipcp/internal/ir"
)

// countSubstitutions implements the paper's measurement (§4.1,
// "Recording the results"): the analyzer substitutes the members of
// CONSTANTS(p) textually into the procedure and counts the
// substitutions. Metzger & Stroud argue this metric relates directly to
// code improvement and factors out procedure length — a known but
// unreferenced constant counts zero.
//
// A reference is substituted when:
//
//   - it is a textual operand (not a synthetic call/ret/loop-control
//     use, and not a phi argument — phis are not source text);
//   - it reads the *entry* value of a constant formal or global (uses
//     reached by a redefinition keep the variable reference);
//   - it is not a by-reference actual whose formal the callee may
//     modify (replacing such a reference with a literal would change
//     the program, so the transformer leaves it).
func (p *propagation) countSubstitutions(proc *ir.Proc) (count, controlFlow int) {
	constEntry := p.constEntryValues(proc)
	if len(constEntry) == 0 {
		return 0, 0
	}
	for _, b := range proc.Blocks {
		for _, i := range b.Instrs {
			if i.Op == ir.OpPhi {
				continue
			}
			for a := range i.Args {
				op := &i.Args[a]
				if op.Synthetic || op.Val == nil {
					continue
				}
				if !constEntry[op.Val] {
					continue
				}
				if i.Op == ir.OpCall && a < i.NumActuals && isByRefModified(p.oracle, i, a) {
					continue
				}
				count++
				// §4's motivation: constants that determine control
				// flow (loop bounds, strides, branch conditions) are
				// the ones that pay off in dependence analysis and
				// parallelization decisions.
				if i.Role != ir.RoleNone {
					controlFlow++
				}
			}
		}
	}
	return count, controlFlow
}

// constEntryValues returns the set of entry SSA values whose formal or
// global has a constant VAL.
func (p *propagation) constEntryValues(proc *ir.Proc) map[*ir.Value]bool {
	set := make(map[*ir.Value]bool)
	fv := p.vals.formals[proc]
	for i, f := range proc.Formals {
		if _, ok := fv[i].IntConst(); !ok {
			continue
		}
		if ev := proc.EntryValues[f]; ev != nil {
			set[ev] = true
		}
	}
	gv := p.vals.globals[proc]
	for k, gvar := range proc.GlobalVars {
		if _, ok := gv[k].IntConst(); !ok {
			continue
		}
		if ev := proc.EntryValues[gvar]; ev != nil {
			set[ev] = true
		}
	}
	return set
}

// isByRefModified reports whether actual a of the call is a bare
// variable bound to a formal the callee may modify (per the active MOD
// oracle).
func isByRefModified(oracle ir.ModOracle, call *ir.Instr, a int) bool {
	op := call.Args[a]
	if op.Const != nil || op.Var == nil || op.Var.Kind == ir.TempVar || op.Var.Type.IsArray() {
		return false
	}
	if a < len(call.Callee.Formals) && call.Callee.Formals[a].Type.IsArray() {
		return false
	}
	return oracle.ModifiesFormal(call.Callee, a)
}
