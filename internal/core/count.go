package core

import (
	"ipcp/internal/ir"
)

// countSubstitutions implements the paper's measurement (§4.1,
// "Recording the results"): the analyzer substitutes the members of
// CONSTANTS(p) textually into the procedure and counts the
// substitutions. Metzger & Stroud argue this metric relates directly to
// code improvement and factors out procedure length — a known but
// unreferenced constant counts zero.
//
// A reference is substituted when:
//
//   - it is a textual operand (not a synthetic call/ret/loop-control
//     use, and not a phi argument — phis are not source text);
//   - it reads the *entry* value of a constant formal or global (uses
//     reached by a redefinition keep the variable reference);
//   - it is not a by-reference actual whose formal the callee may
//     modify (replacing such a reference with a literal would change
//     the program, so the transformer leaves it).
func (p *propagation) countSubstitutions(proc *ir.Proc) (count, controlFlow int) {
	// A seeded procedure replays its cached per-variable use counts
	// instead of walking SSA form — the counts depend only on the
	// procedure body and its callees' MOD sets (both covered by the
	// seed's cone key), so the replay is exact, and skipping the walk is
	// what lets buildSSA skip reused procedures entirely.
	if seed := p.reuse[proc]; seed != nil && seed.Uses != nil {
		return p.countFromUses(proc, seed.Uses)
	}
	constEntry := p.constEntryValues(proc)
	if len(constEntry) == 0 {
		return 0, 0
	}
	for _, b := range proc.Blocks {
		for _, i := range b.Instrs {
			if i.Op == ir.OpPhi {
				continue
			}
			for a := range i.Args {
				op := &i.Args[a]
				if op.Synthetic || op.Val == nil {
					continue
				}
				if !constEntry[op.Val] {
					continue
				}
				if i.Op == ir.OpCall && a < i.NumActuals && isByRefModified(p.oracle, i, a) {
					continue
				}
				count++
				// §4's motivation: constants that determine control
				// flow (loop bounds, strides, branch conditions) are
				// the ones that pay off in dependence analysis and
				// parallelization decisions.
				if i.Role != ir.RoleNone {
					controlFlow++
				}
			}
		}
	}
	return count, controlFlow
}

// constEntryValues returns the set of entry SSA values whose formal or
// global has a constant VAL.
func (p *propagation) constEntryValues(proc *ir.Proc) map[*ir.Value]bool {
	set := make(map[*ir.Value]bool)
	fv := p.vals.formals[proc]
	for i, f := range proc.Formals {
		if _, ok := fv[i].IntConst(); !ok {
			continue
		}
		if ev := proc.EntryValues[f]; ev != nil {
			set[ev] = true
		}
	}
	gv := p.vals.globals[proc]
	for k, gvar := range proc.GlobalVars {
		if _, ok := gv[k].IntConst(); !ok {
			continue
		}
		if ev := proc.EntryValues[gvar]; ev != nil {
			set[ev] = true
		}
	}
	return set
}

// VarUses counts the textual references one variable's constant entry
// value would substitute: Subs in total, Control of them in
// control-flow roles.
type VarUses struct {
	Subs    int
	Control int
}

// ProcUses is countSubstitutions factored by variable: Formal[i] for
// the i-th formal, Global[k] for the k-th scalar global (parallel to
// Prog.ScalarGlobals). Because a reference is substituted exactly when
// its variable's VAL is constant, the substitution count under any VAL
// sets is the sum of the constant variables' entries — so these vectors
// let a later run count without SSA form.
type ProcUses struct {
	Formal []VarUses
	Global []VarUses

	// Phis is the number of phi instructions the procedure's SSA
	// conversion inserts — replayed into Proc.ElidedPhis when the
	// conversion is skipped, so IR-size traces match a scratch run.
	Phis int
}

// collectUses derives a procedure's ProcUses from its SSA form, by the
// same walk and exclusions as countSubstitutions.
func (p *propagation) collectUses(proc *ir.Proc) *ProcUses {
	u := &ProcUses{
		Formal: make([]VarUses, len(proc.Formals)),
		Global: make([]VarUses, len(proc.GlobalVars)),
	}
	owner := make(map[*ir.Value]int, len(proc.Formals)+len(proc.GlobalVars))
	nf := len(proc.Formals)
	for i, f := range proc.Formals {
		if ev := proc.EntryValues[f]; ev != nil {
			owner[ev] = i
		}
	}
	for k, gvar := range proc.GlobalVars {
		if ev := proc.EntryValues[gvar]; ev != nil {
			owner[ev] = nf + k
		}
	}
	for _, b := range proc.Blocks {
		for _, i := range b.Instrs {
			if i.Op == ir.OpPhi {
				u.Phis++
				continue
			}
			for a := range i.Args {
				op := &i.Args[a]
				if op.Synthetic || op.Val == nil {
					continue
				}
				slot, ok := owner[op.Val]
				if !ok {
					continue
				}
				if i.Op == ir.OpCall && a < i.NumActuals && isByRefModified(p.oracle, i, a) {
					continue
				}
				var vu *VarUses
				if slot < nf {
					vu = &u.Formal[slot]
				} else {
					vu = &u.Global[slot-nf]
				}
				vu.Subs++
				if i.Role != ir.RoleNone {
					vu.Control++
				}
			}
		}
	}
	return u
}

// countFromUses sums the cached use counts of the variables whose final
// VAL is constant — the seeded procedure's countSubstitutions.
func (p *propagation) countFromUses(proc *ir.Proc, u *ProcUses) (count, controlFlow int) {
	fv := p.vals.formals[proc]
	for i := range proc.Formals {
		if _, ok := fv[i].IntConst(); ok {
			count += u.Formal[i].Subs
			controlFlow += u.Formal[i].Control
		}
	}
	gv := p.vals.globals[proc]
	for k := range proc.GlobalVars {
		if _, ok := gv[k].IntConst(); ok {
			count += u.Global[k].Subs
			controlFlow += u.Global[k].Control
		}
	}
	return count, controlFlow
}

// isByRefModified reports whether actual a of the call is a bare
// variable bound to a formal the callee may modify (per the active MOD
// oracle).
func isByRefModified(oracle ir.ModOracle, call *ir.Instr, a int) bool {
	op := call.Args[a]
	if op.Const != nil || op.Var == nil || op.Var.Kind == ir.TempVar || op.Var.Type.IsArray() {
		return false
	}
	if a < len(call.Callee.Formals) && call.Callee.Formals[a].Type.IsArray() {
		return false
	}
	return oracle.ModifiesFormal(call.Callee, a)
}
