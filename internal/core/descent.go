package core

import (
	"fmt"

	"ipcp/internal/core/lattice"
	"ipcp/internal/ir"
)

// descentWatcher is the Debug-mode assertion behind the monotone-
// descent invariant of stage 3: every update a solver stores into a
// VAL cell must satisfy next ⊑ old. The lattice has depth 2, so the
// solvers' termination — and the correctness of every warm start
// seeded from a previous fixpoint — rests on cells only ever moving
// down; a raise is a solver bug, never a user error, and panics
// loudly naming the solver, the offending procedure, the cell, and
// both values (the same fail-fast contract as the Debug IR verifier).
//
// The nil watcher is a no-op, so non-Debug runs pay only a nil check
// per changed cell.
type descentWatcher struct {
	solver string
}

// newDescentWatcher returns a watcher under Debug, nil otherwise.
func newDescentWatcher(debug bool, solver string) *descentWatcher {
	if !debug {
		return nil
	}
	return &descentWatcher{solver: solver}
}

// descentFault, when non-nil, perturbs the value the watcher is about
// to check — never the value the solver stores. It exists only so the
// tests can seed a monotonicity fault and prove the watcher fires
// naming the offending procedure.
var descentFault func(proc *ir.Proc, old, next lattice.Value) lattice.Value

// observe checks one impending update of proc's VAL cell (kind
// "formal" or "global", slot idx) and panics on a raise.
func (w *descentWatcher) observe(proc *ir.Proc, kind string, idx int, old, next lattice.Value) {
	if w == nil {
		return
	}
	if f := descentFault; f != nil {
		next = f(proc, old, next)
	}
	if next.Leq(old) {
		return
	}
	panic(fmt.Sprintf(
		"core: %s solver raised VAL cell %s[%d] of procedure %q: %s -> %s (monotone-descent violation)",
		w.solver, kind, idx, proc.Name, old, next))
}
