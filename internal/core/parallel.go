package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"ipcp/internal/analysis/callgraph"
)

// This file implements the concurrency substrate of the analyzer: a
// bounded worker pool and the call-graph wave schedule that lets the
// per-procedure stages (SSA construction, stage-1 value numbering +
// return jump functions, stage-2 forward jump functions) fan out across
// cores while producing results byte-identical to a sequential run.
//
// The determinism argument, stage by stage:
//
//   - buildSSA mutates only the procedure it is given; the MOD oracle it
//     consults is read-only after modref.Compute. Per-procedure output
//     depends only on that procedure, so execution order is irrelevant.
//
//   - stage 1 has real cross-procedure dependencies: value-numbering a
//     caller evaluates the *return jump functions* of its callees. We
//     therefore schedule procedures in waves over the condensation of
//     the call graph (sccWaves): a wave only starts after every callee
//     outside its members' SCCs has been fully processed, and results
//     are published into the shared maps sequentially between waves.
//     Within a wave no goroutine writes shared state, and procedures in
//     the same SCC never see each other's return jump functions (they
//     are recursive, so none are ever built) — exactly the sequential
//     bottom-up semantics.
//
//   - stage 2 only reads the (now final) stage-1 value numberings;
//     every call site's jump functions land in a per-procedure slot and
//     are merged into the site map in deterministic call-graph order.
//
//   - stage 3 (the interprocedural worklist) stays sequential: its whole
//     job is ordered meets into shared VAL sets, the per-program work is
//     tiny compared to stages 1–2, and keeping it single-threaded is
//     what makes the solver-effort counters (SolverPasses,
//     JFEvaluations) reproducible run to run.
//
// The matrix level (AnalyzeMatrix) is embarrassingly parallel on top of
// this: each configuration gets its own deep-cloned IR, so workers share
// nothing but immutable inputs.

// poolSize resolves a Workers setting: n > 0 is taken literally, and
// anything else means one worker per available CPU.
func poolSize(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// parallelFor runs fn(i) for every i in [0, n) on up to workers
// goroutines. With workers <= 1 it degenerates to a plain loop — the
// sequential reference path the differential tests compare against.
// Work items are handed out through an atomic counter, so scheduling is
// nondeterministic but the set of calls (and, per the notes above, the
// results) is not.
func parallelFor(workers, n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			//lint:ignore cancelpoll the shared counter strictly advances to n, so the loop runs at most n iterations; fn itself polls deadlines
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// sccWaves partitions the call graph's bottom-up order into waves that
// respect the condensation DAG: wave k contains exactly the procedures
// whose every callee outside their own SCC sits in a wave < k. All
// procedures inside one wave are mutually independent for stage-1
// purposes, so each wave can run fully parallel; publishing results
// between waves keeps every cross-wave read ordered.
func sccWaves(cg *callgraph.Graph) [][]*callgraph.Node {
	// SCCs are numbered in reverse topological order, so every external
	// callee's component is already leveled when we reach its caller's.
	level := make([]int, len(cg.SCCs))
	maxLevel := 0
	for s, comp := range cg.SCCs {
		lv := 0
		for _, n := range comp {
			for _, m := range n.Callees {
				if m.SCC != s && level[m.SCC]+1 > lv {
					lv = level[m.SCC] + 1
				}
			}
		}
		level[s] = lv
		if lv > maxLevel {
			maxLevel = lv
		}
	}
	waves := make([][]*callgraph.Node, maxLevel+1)
	// Walk BottomUp so each wave preserves the sequential visit order —
	// the waves' contents matter for correctness, their internal order
	// only for keeping the published map fills reproducible.
	for _, n := range cg.BottomUp() {
		lv := level[n.SCC]
		waves[lv] = append(waves[lv], n)
	}
	return waves
}
