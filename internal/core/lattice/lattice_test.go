package lattice

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"ipcp/internal/ir"
)

// Generate makes Value satisfy quick.Generator, producing a mix of ⊤, ⊥,
// integer constants (from a small pool so collisions happen), and
// logical constants.
func (Value) Generate(r *rand.Rand, _ int) reflect.Value {
	var v Value
	switch r.Intn(5) {
	case 0:
		v = Top
	case 1:
		v = Bottom
	case 2:
		v = OfBool(r.Intn(2) == 0)
	default:
		v = OfInt(int64(r.Intn(4)))
	}
	return reflect.ValueOf(v)
}

func TestMeetTable(t *testing.T) {
	c1, c2 := OfInt(1), OfInt(2)
	cases := []struct{ a, b, want Value }{
		{Top, Top, Top},
		{Top, c1, c1},
		{c1, Top, c1},
		{Top, Bottom, Bottom},
		{Bottom, c1, Bottom},
		{c1, c1, c1},
		{c1, c2, Bottom},
		{Bottom, Bottom, Bottom},
	}
	for _, tc := range cases {
		if got := Meet(tc.a, tc.b); !got.Equal(tc.want) {
			t.Errorf("Meet(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestMeetDistinguishesTypes(t *testing.T) {
	// An integer 1 and a logical .TRUE. are different constants.
	if got := Meet(OfInt(1), OfBool(true)); !got.IsBottom() {
		t.Errorf("Meet(int 1, bool true) = %v, want bottom", got)
	}
}

func TestMeetCommutative(t *testing.T) {
	f := func(a, b Value) bool { return Meet(a, b).Equal(Meet(b, a)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeetAssociative(t *testing.T) {
	f := func(a, b, c Value) bool {
		return Meet(Meet(a, b), c).Equal(Meet(a, Meet(b, c)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeetIdempotent(t *testing.T) {
	f := func(a Value) bool { return Meet(a, a).Equal(a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeetIsLowerBound(t *testing.T) {
	f := func(a, b Value) bool {
		m := Meet(a, b)
		return m.Leq(a) && m.Leq(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The lattice has bounded depth: any chain of strict lowerings from ⊤
// has length at most 2 (⊤ → c → ⊥), the property the paper's complexity
// arguments rest on.
func TestBoundedDepth(t *testing.T) {
	f := func(vals []Value) bool {
		cur := Top
		lowerings := 0
		for _, v := range vals {
			next := Meet(cur, v)
			if !next.Equal(cur) {
				lowerings++
			}
			cur = next
		}
		return lowerings <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAccessors(t *testing.T) {
	v := OfInt(7)
	if !v.IsConst() || v.IsTop() || v.IsBottom() {
		t.Error("OfInt(7) kind wrong")
	}
	if c, ok := v.IntConst(); !ok || c != 7 {
		t.Errorf("IntConst: %d %v", c, ok)
	}
	if _, ok := OfBool(true).IntConst(); ok {
		t.Error("bool constant should not be an int constant")
	}
	if Of(nil) != Bottom {
		t.Error("Of(nil) should be bottom")
	}
	if Top.Const() != nil || Bottom.Const() != nil {
		t.Error("Const() of non-constants should be nil")
	}
	if c := Of(ir.RealConst(1.5)).Const(); c == nil || c.Real != 1.5 {
		t.Error("real constants should round-trip")
	}
}

func TestStrings(t *testing.T) {
	if Top.String() != "T" || Bottom.String() != "_|_" || OfInt(3).String() != "3" {
		t.Errorf("strings: %q %q %q", Top, Bottom, OfInt(3))
	}
}
