// Package lattice implements the constant propagation lattice of
// Figure 1 of the paper: ⊤ (top), constants, and ⊥ (bottom), with the
// meet operator
//
//	any ∧ ⊤  = any
//	any ∧ ⊥  = ⊥
//	ci  ∧ cj = ci   if ci = cj
//	ci  ∧ cj = ⊥    if ci ≠ cj
//
// The lattice is infinite but has bounded depth: a value can be lowered
// at most twice (⊤ → constant → ⊥), which is what makes the
// interprocedural propagation fast.
//
// Constants are typed ir.Const values; the interprocedural propagator
// only ever injects integers (the paper propagates integer constants
// only), but the intraprocedural SCCP also tracks LOGICAL constants so
// it can decide branches.
package lattice

import (
	"fmt"

	"ipcp/internal/ir"
)

type kind uint8

const (
	top kind = iota
	constant
	bottom
)

// Value is a lattice element.
type Value struct {
	k kind
	c *ir.Const
}

// Top is the optimistic initial element ⊤.
var Top = Value{k: top}

// Bottom is the pessimistic element ⊥ ("not a constant").
var Bottom = Value{k: bottom}

// Of returns the lattice element for a constant.
func Of(c *ir.Const) Value {
	if c == nil {
		return Bottom
	}
	return Value{k: constant, c: c}
}

// OfInt returns the lattice element for an integer constant.
func OfInt(v int64) Value { return Of(ir.IntConst(v)) }

// OfBool returns the lattice element for a logical constant.
func OfBool(v bool) Value { return Of(ir.BoolConst(v)) }

// IsTop reports whether v is ⊤.
func (v Value) IsTop() bool { return v.k == top }

// IsBottom reports whether v is ⊥.
func (v Value) IsBottom() bool { return v.k == bottom }

// IsConst reports whether v is a constant.
func (v Value) IsConst() bool { return v.k == constant }

// Const returns the constant of a constant element (nil otherwise).
func (v Value) Const() *ir.Const {
	if v.k != constant {
		return nil
	}
	return v.c
}

// IntConst returns the integer value when v is an integer constant.
func (v Value) IntConst() (int64, bool) {
	if v.k == constant && v.c.Type == ir.Int {
		return v.c.Int, true
	}
	return 0, false
}

// Meet returns v ∧ w per Figure 1.
func Meet(v, w Value) Value {
	switch {
	case v.k == top:
		return w
	case w.k == top:
		return v
	case v.k == bottom || w.k == bottom:
		return Bottom
	case v.c.Equal(w.c):
		return v
	default:
		return Bottom
	}
}

// Equal reports whether two lattice elements are identical.
func (v Value) Equal(w Value) bool {
	if v.k != w.k {
		return false
	}
	if v.k != constant {
		return true
	}
	return v.c.Equal(w.c)
}

// Leq reports whether v ⊑ w in the lattice order (⊥ ⊑ c ⊑ ⊤).
func (v Value) Leq(w Value) bool { return Meet(v, w).Equal(v) }

// String renders ⊤ as "T", ⊥ as "_|_", and constants as their value.
func (v Value) String() string {
	switch v.k {
	case top:
		return "T"
	case bottom:
		return "_|_"
	default:
		return fmt.Sprintf("%v", v.c)
	}
}
