// Package jump implements the jump functions of Grove & Torczon (PLDI
// 1993): the four forward jump-function flavors of §3.1 and the
// polynomial return jump function of §3.2.
//
// A forward jump function J^s_y gives the value of actual parameter y at
// call site s as a function of the enclosing procedure's formals (and
// globals — footnote 1 extends "parameter" to include them). We
// represent a jump function as a sym.Expr; nil is ⊥. The four flavors
// are *filters* over the full value-numbering expression:
//
//	Literal          — y is a literal constant at s (misses globals)
//	Intraprocedural  — gcp(y,s) folds to a constant
//	PassThrough      — a constant, or exactly one incoming formal/global
//	Polynomial       — any closed expression over formals/globals
//
// so the constants found by each flavor are a subset of those found by
// the next (§3.1), which the test suite verifies.
package jump

import (
	"fmt"

	"ipcp/internal/ir"
	"ipcp/internal/sym"
)

// Kind selects a forward jump-function flavor, in increasing order of
// construction complexity (§3.1).
type Kind int

// Forward jump-function flavors.
const (
	Literal Kind = iota
	Intraprocedural
	PassThrough
	Polynomial
)

// Kinds lists the flavors in the order the paper's Table 2 presents
// groups of columns (most precise first).
var Kinds = []Kind{Polynomial, PassThrough, Intraprocedural, Literal}

func (k Kind) String() string {
	switch k {
	case Literal:
		return "literal"
	case Intraprocedural:
		return "intraprocedural"
	case PassThrough:
		return "pass-through"
	case Polynomial:
		return "polynomial"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Filter restricts the value-numbering expression e computed for
// operand op (an actual parameter or implicit global at a call site) to
// the class kind permits. It returns nil (⊥) when the expression falls
// outside the class.
func Filter(kind Kind, op ir.Operand, e sym.Expr) sym.Expr {
	switch kind {
	case Literal:
		// Only a literal constant written at the call site; implicit
		// global operands are never literal, so constant-valued globals
		// are missed (§3.1.1).
		if op.Literal && op.Const != nil && op.Const.Type == ir.Int {
			return sym.NewConst(op.Const.Int)
		}
		return nil
	case Intraprocedural:
		if _, ok := e.(*sym.Const); ok {
			return e
		}
		return nil
	case PassThrough:
		switch e.(type) {
		case *sym.Const, *sym.Formal, *sym.GlobalEntry:
			return e
		}
		return nil
	case Polynomial:
		if e != nil && sym.IsClosed(e) {
			return e
		}
		return nil
	}
	return nil
}

// Site holds the forward jump functions of one call site.
type Site struct {
	Call *ir.Instr

	// Formal[i] is the jump function for the callee's i-th formal
	// (nil = ⊥; array formals have no jump function).
	Formal []sym.Expr

	// Global[k] is the jump function for Program.ScalarGlobals[k].
	Global []sym.Expr
}

// ---------------------------------------------------------------------------
// Return jump functions (§3.2)

// Returns holds the return jump functions of one procedure: the best
// symbolic expression (over the procedure's entry values) for each
// binding's value when the procedure returns. nil entries are ⊥.
type Returns struct {
	// Result is the jump function for the function result (functions
	// only).
	Result sym.Expr

	// Formal[i] is the return jump function for the i-th formal.
	Formal []sym.Expr

	// Global maps each scalar global to its return jump function.
	Global map[*ir.GlobalVar]sym.Expr
}

// Store collects return jump functions per procedure and implements
// valnum.ReturnEval: during value numbering of a caller, a call-modified
// binding takes the callee's return jump function evaluated with the
// symbolic values of the actuals — kept only when it folds to a
// constant. A return jump function that depends on parameters of the
// *calling* procedure therefore never evaluates as constant, exactly the
// limitation §3.2 describes.
type Store struct {
	prog        *ir.Program
	globalIndex map[*ir.GlobalVar]int
	byProc      map[*ir.Proc]*Returns
}

// NewStore returns an empty return-jump-function store for prog.
func NewStore(prog *ir.Program) *Store {
	gi := make(map[*ir.GlobalVar]int, len(prog.ScalarGlobals))
	for i, g := range prog.ScalarGlobals {
		gi[g] = i
	}
	return &Store{prog: prog, globalIndex: gi, byProc: make(map[*ir.Proc]*Returns)}
}

// Set records the return jump functions of proc.
func (s *Store) Set(proc *ir.Proc, r *Returns) { s.byProc[proc] = r }

// Get returns the return jump functions of proc (nil when none were
// built, e.g. for recursive procedures).
func (s *Store) Get(proc *ir.Proc) *Returns { return s.byProc[proc] }

// CallDefExpr implements valnum.ReturnEval.
func (s *Store) CallDefExpr(call *ir.Instr, def *ir.Value, argExpr func(int) sym.Expr) sym.Expr {
	r := s.byProc[call.Callee]
	if r == nil {
		return nil
	}
	var e sym.Expr
	switch {
	case def == call.Dst:
		e = r.Result
	case def.CalleeFormal >= 0:
		if def.CalleeFormal < len(r.Formal) {
			e = r.Formal[def.CalleeFormal]
		}
	case def.CalleeGlobal != nil:
		e = r.Global[def.CalleeGlobal]
	}
	if e == nil {
		return nil
	}
	// Substitute the callee's formals and globals with the symbolic
	// values of the corresponding arguments at this site.
	subst := sym.Substitute(e,
		func(j int) sym.Expr {
			if j >= call.NumActuals {
				return &sym.Unknown{ID: -1} // arity mismatch: unknown
			}
			if a := argExpr(j); a != nil {
				return a
			}
			return &sym.Unknown{ID: -1}
		},
		func(g *ir.GlobalVar) sym.Expr {
			gi, ok := s.globalIndex[g]
			if !ok {
				return &sym.Unknown{ID: -1}
			}
			if a := argExpr(call.NumActuals + gi); a != nil {
				return a
			}
			return &sym.Unknown{ID: -1}
		})
	// §3.2: a return jump function is used only when it evaluates to a
	// constant with the information available at the site.
	if c, ok := subst.(*sym.Const); ok {
		return c
	}
	return nil
}
