package jump

import (
	"testing"

	"ipcp/internal/ir"
	"ipcp/internal/sym"
)

func litOperand(v int64) ir.Operand {
	return ir.ConstOperand(ir.IntConst(v))
}

func varOperand() ir.Operand {
	return ir.VarOperand(&ir.Var{Name: "X", Type: ir.Int})
}

func TestFilterLiteral(t *testing.T) {
	// Accepts only source literals.
	if e := Filter(Literal, litOperand(5), sym.NewConst(5)); e == nil {
		t.Error("literal operand rejected")
	}
	// A constant-valued variable is not a literal.
	if e := Filter(Literal, varOperand(), sym.NewConst(5)); e != nil {
		t.Errorf("non-literal operand accepted: %v", e)
	}
	// Real literals are not integer constants.
	realOp := ir.ConstOperand(ir.RealConst(1.5))
	if e := Filter(Literal, realOp, nil); e != nil {
		t.Errorf("real literal accepted: %v", e)
	}
}

func TestFilterIntraprocedural(t *testing.T) {
	if e := Filter(Intraprocedural, varOperand(), sym.NewConst(9)); e == nil {
		t.Error("constant expression rejected")
	}
	f := &sym.Formal{Index: 0}
	if e := Filter(Intraprocedural, varOperand(), f); e != nil {
		t.Errorf("formal accepted by intraprocedural flavor: %v", e)
	}
}

func TestFilterPassThrough(t *testing.T) {
	f := &sym.Formal{Index: 1}
	g := &sym.GlobalEntry{G: &ir.GlobalVar{ID: 0, Block: "B", Name: "G"}}
	if e := Filter(PassThrough, varOperand(), f); e == nil {
		t.Error("pass-through formal rejected")
	}
	if e := Filter(PassThrough, varOperand(), g); e == nil {
		t.Error("pass-through global rejected")
	}
	if e := Filter(PassThrough, varOperand(), sym.NewConst(3)); e == nil {
		t.Error("constant rejected")
	}
	// 2*f is polynomial, not pass-through.
	poly := sym.MakeOp(ir.OpMul, sym.NewConst(2), f)
	if e := Filter(PassThrough, varOperand(), poly); e != nil {
		t.Errorf("polynomial accepted by pass-through flavor: %v", e)
	}
}

func TestFilterPolynomial(t *testing.T) {
	f := &sym.Formal{Index: 0}
	poly := sym.MakeOp(ir.OpAdd, sym.MakeOp(ir.OpMul, sym.NewConst(2), f), sym.NewConst(1))
	if e := Filter(Polynomial, varOperand(), poly); e == nil {
		t.Error("closed polynomial rejected")
	}
	open := sym.MakeOp(ir.OpAdd, f, &sym.Unknown{ID: 3})
	if e := Filter(Polynomial, varOperand(), open); e != nil {
		t.Errorf("open expression accepted: %v", e)
	}
	if e := Filter(Polynomial, varOperand(), nil); e != nil {
		t.Errorf("nil expression accepted: %v", e)
	}
}

// Containment: anything a simpler flavor accepts, the stronger flavors
// accept too (with an equivalent result).
func TestFilterContainment(t *testing.T) {
	f := &sym.Formal{Index: 0}
	cases := []struct {
		op ir.Operand
		e  sym.Expr
	}{
		{litOperand(5), sym.NewConst(5)},
		{varOperand(), sym.NewConst(7)},
		{varOperand(), f},
		{varOperand(), sym.MakeOp(ir.OpMul, f, sym.NewConst(3))},
		{varOperand(), &sym.Unknown{ID: 1}},
	}
	order := []Kind{Literal, Intraprocedural, PassThrough, Polynomial}
	for ci, c := range cases {
		accepted := false
		for _, k := range order {
			got := Filter(k, c.op, c.e)
			if accepted && got == nil {
				t.Errorf("case %d: %v rejects what a simpler flavor accepted", ci, k)
			}
			if got != nil {
				accepted = true
			}
		}
	}
}

func buildStoreProg() (*ir.Program, *ir.Proc, *ir.GlobalVar) {
	prog := ir.NewProgram()
	g := &ir.GlobalVar{ID: 0, Block: "B", Name: "G", Type: ir.Int, Size: 1}
	prog.Globals = []*ir.GlobalVar{g}
	prog.ScalarGlobals = []*ir.GlobalVar{g}
	callee := &ir.Proc{Name: "CALLEE"}
	prog.AddProc(callee)
	callee.Formals = []*ir.Var{{Name: "A", Kind: ir.FormalVar, Type: ir.Int, Index: 0}}
	return prog, callee, g
}

func TestStoreEvaluatesConstantReturns(t *testing.T) {
	prog, callee, g := buildStoreProg()
	s := NewStore(prog)
	s.Set(callee, &Returns{
		Formal: []sym.Expr{sym.NewConst(7)},
		Global: map[*ir.GlobalVar]sym.Expr{g: sym.NewConst(9)},
	})

	call := &ir.Instr{Op: ir.OpCall, Callee: callee, NumActuals: 1}
	def := &ir.Value{CalleeFormal: 0}
	argExpr := func(i int) sym.Expr { return sym.NewConst(0) }

	if e, ok := s.CallDefExpr(call, def, argExpr).(*sym.Const); !ok || e.Val != 7 {
		t.Errorf("formal return JF: %v", e)
	}
	gdef := &ir.Value{CalleeFormal: -1, CalleeGlobal: g}
	if e, ok := s.CallDefExpr(call, gdef, argExpr).(*sym.Const); !ok || e.Val != 9 {
		t.Errorf("global return JF: %v", e)
	}
}

func TestStoreSubstitutesActuals(t *testing.T) {
	prog, callee, _ := buildStoreProg()
	s := NewStore(prog)
	// R(A) = A + 1 — constant only when the actual folds.
	s.Set(callee, &Returns{
		Formal: []sym.Expr{sym.MakeOp(ir.OpAdd, &sym.Formal{Index: 0}, sym.NewConst(1))},
	})
	call := &ir.Instr{Op: ir.OpCall, Callee: callee, NumActuals: 1}
	def := &ir.Value{CalleeFormal: 0}

	constArg := func(i int) sym.Expr { return sym.NewConst(41) }
	if e, ok := s.CallDefExpr(call, def, constArg).(*sym.Const); !ok || e.Val != 42 {
		t.Errorf("constant actual: %v", e)
	}

	// §3.2's limitation: an actual that is a caller formal never
	// evaluates to a constant.
	formalArg := func(i int) sym.Expr { return &sym.Formal{Index: 2} }
	if e := s.CallDefExpr(call, def, formalArg); e != nil {
		t.Errorf("caller-parameter actual should be nil, got %v", e)
	}

	// Unknown actual likewise.
	nilArg := func(i int) sym.Expr { return nil }
	if e := s.CallDefExpr(call, def, nilArg); e != nil {
		t.Errorf("unknown actual should be nil, got %v", e)
	}
}

func TestStoreMissingProcedure(t *testing.T) {
	prog, callee, _ := buildStoreProg()
	s := NewStore(prog)
	call := &ir.Instr{Op: ir.OpCall, Callee: callee, NumActuals: 1}
	def := &ir.Value{CalleeFormal: 0}
	if e := s.CallDefExpr(call, def, func(int) sym.Expr { return nil }); e != nil {
		t.Errorf("no return JFs recorded: want nil, got %v", e)
	}
	if s.Get(callee) != nil {
		t.Error("Get should be nil before Set")
	}
}

func TestKindStrings(t *testing.T) {
	names := map[Kind]string{
		Literal: "literal", Intraprocedural: "intraprocedural",
		PassThrough: "pass-through", Polynomial: "polynomial",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d: %q", int(k), k.String())
		}
	}
}
