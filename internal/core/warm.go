package core

import (
	"crypto/sha256"
	"encoding/hex"

	"ipcp/internal/analysis/callgraph"
	"ipcp/internal/core/lattice"
	"ipcp/internal/ir"
)

// This file implements demand-driven re-solving of stage 3: instead of
// always iterating to the fixpoint from ⊤ over the whole program, an
// incremental run may restart the worklist from the previous run's
// final VAL assignment, re-solving only the procedures the edit could
// have affected.
//
// A plain restart from a stale assignment is unsound, because the
// lattice only descends during a solve — a cell can never *rise* — yet
// an edit can raise a cell's true value (deleting the one call site
// that passed 2 makes a previously-⊥ formal constant again). The
// classic fix is a two-phase scheme:
//
//  1. Reset the *cone* — every procedure whose incoming constraints
//     may have changed, closed forward over call edges — to its
//     initial assignment (⊤, with the usual array-formal and
//     main-globals exceptions).
//  2. Keep the previous fixpoint everywhere else and run the ordinary
//     worklist over the cone plus its boundary callers.
//
// Soundness argument (DESIGN.md, "Demand-driven re-solve", spells it
// out): let W be the warm region (the cone's complement). The cone is
// closed under callees, so no cone procedure calls into W — every
// caller of a W-procedure is itself in W. The dirty base additionally
// contains every procedure whose jump functions moved (fingerprint
// diff), every target of a removed call edge, and every procedure
// whose reachability flipped, so the constraint system restricted to W
// is *identical* to the previous run's restricted system, and the old
// fixpoint restricted to W is exactly the new fixpoint there. The
// starting assignment is therefore pointwise ≥ the new fixpoint, and
// every constraint it could violate has its source procedure (or
// jump-function instance) on the initial worklist, so the monotone
// worklist iteration converges to exactly the cold fixpoint — the
// differential suite and the fuzz target check bit-identity.

// ProcCells is one procedure's VAL assignment: one lattice cell per
// formal and one per scalar global (parallel to Program.ScalarGlobals).
type ProcCells struct {
	Formals []lattice.Value
	Globals []lattice.Value
}

// WarmSeed is the previous fixpoint handed into a seeded analysis by
// the incremental driver (via Reuse.Warm). All maps key by procedure
// name; entries for procedures absent from the current program are
// ignored.
type WarmSeed struct {
	// Cells holds the previous final VAL assignment. A procedure with
	// no entry (or one whose vector arities no longer match) is treated
	// as dirty and re-solved from its initial assignment.
	Cells map[string]ProcCells

	// JFHash holds the previous run's per-procedure jump-function
	// fingerprints; a procedure whose freshly derived fingerprint
	// differs (or that has no entry) is dirty.
	JFHash map[string]string

	// Dirty names procedures the driver already knows need a cold
	// re-solve: source-changed or new procedures, targets of removed
	// call edges, and procedures whose reachability from main flipped.
	Dirty map[string]bool
}

// WarmStats reports how stage 3 of a seeded run executed; the
// incremental driver surfaces them as Report.Incremental counters.
type WarmStats struct {
	// Started reports whether the run warm-started from a previous
	// fixpoint (false: the solve ran cold from ⊤).
	Started bool

	// ConeProcs counts the procedures reset to their initial cells (the
	// whole program on a cold solve).
	ConeProcs int

	// Seeded counts the items placed on the initial stage-3 worklist;
	// Visited the items popped over the whole solve; Enqueued the items
	// (re-)enqueued by cell changes after the initial seeding.
	Seeded   int64
	Visited  int64
	Enqueued int64
}

// sitesFingerprint hashes one procedure's forward jump functions: per
// call site in body order, the callee name and the canonical spelling
// (sym.Expr.Key) of every formal and global jump function. Site jump
// functions are always closed — jump.Filter admits only constants,
// entry-value leaves, and closed polynomials — so the spelling is
// stable across runs and the fingerprint moves exactly when some jump
// function's meaning does.
func (p *propagation) sitesFingerprint(n *callgraph.Node) string {
	h := sha256.New()
	var sep = []byte{0}
	for _, call := range n.Sites {
		site := p.sites[call]
		if site == nil {
			h.Write([]byte("\x01nosite"))
			continue
		}
		h.Write([]byte(call.Callee.Name))
		h.Write(sep)
		for _, e := range site.Formal {
			if e == nil {
				h.Write([]byte("\x02bot"))
			} else {
				h.Write([]byte(e.Key()))
			}
			h.Write(sep)
		}
		h.Write([]byte{3})
		for _, e := range site.Global {
			if e == nil {
				h.Write([]byte("\x02bot"))
			} else {
				h.Write([]byte(e.Key()))
			}
			h.Write(sep)
		}
		h.Write([]byte{4})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// siteFingerprints computes (once) the jump-function fingerprint of
// every procedure; must run after stage 2.
func (p *propagation) siteFingerprints() map[string]string {
	if p.siteHash != nil {
		return p.siteHash
	}
	nodes := p.cg.TopDown()
	hashes := make([]string, len(nodes))
	parallelFor(p.workers, len(nodes), func(i int) {
		hashes[i] = p.sitesFingerprint(nodes[i])
	})
	p.siteHash = make(map[string]string, len(nodes))
	for i, n := range nodes {
		p.siteHash[n.Proc.Name] = hashes[i]
	}
	return p.siteHash
}

// warmPrep applies the two-phase warm-start scheme after initVals: it
// computes the cone, overwrites the cells of every procedure outside
// it with the previous fixpoint, and returns the cone set. A nil
// return means the solve runs cold (no seed, or no usable one).
func (p *propagation) warmPrep() map[*ir.Proc]bool {
	if p.warm == nil || p.prog.Main == nil {
		return nil
	}
	fp := p.siteFingerprints()

	// Dirty base: driver-declared dirt, moved jump functions, and
	// procedures without a usable previous assignment.
	dirty := make([]*ir.Proc, 0)
	isDirty := func(proc *ir.Proc) bool {
		name := proc.Name
		if p.warm.Dirty[name] {
			return true
		}
		if prev, ok := p.warm.JFHash[name]; !ok || prev != fp[name] {
			return true
		}
		cells, ok := p.warm.Cells[name]
		return !ok ||
			len(cells.Formals) != len(proc.Formals) ||
			len(cells.Globals) != len(p.prog.ScalarGlobals)
	}
	for _, proc := range p.prog.Procs {
		if isDirty(proc) {
			dirty = append(dirty, proc)
		}
	}

	// Cone: the dirty base closed forward over call edges, so a cone
	// member's callees are always in the cone — the invariant the
	// soundness argument rests on. Closure runs over every procedure
	// (reachable or not): unreachable cone members simply keep their
	// initial cells, exactly as a cold solve leaves them.
	cone := make(map[*ir.Proc]bool, len(dirty))
	queue := dirty
	for _, proc := range queue {
		cone[proc] = true
	}
	//lint:ignore cancelpoll BFS over the finite call graph: each procedure enters the cone (and hence the queue) at most once
	for len(queue) > 0 {
		proc := queue[0]
		queue = queue[1:]
		n := p.cg.Nodes[proc]
		if n == nil {
			continue
		}
		for _, m := range n.Callees {
			if !cone[m.Proc] {
				cone[m.Proc] = true
				queue = append(queue, m.Proc)
			}
		}
	}

	// Phase 2: procedures outside the cone restart from the previous
	// fixpoint. The meet with the initial cell is a defensive clamp — a
	// well-formed snapshot's cells are already ≤ the initial assignment
	// (array formals ⊥, main's globals ⊥), so it is normally an
	// identity.
	for _, proc := range p.prog.Procs {
		if cone[proc] {
			continue
		}
		cells := p.warm.Cells[proc.Name]
		fv, gv := p.vals.formals[proc], p.vals.globals[proc]
		for i := range fv {
			fv[i] = lattice.Meet(fv[i], cells.Formals[i])
		}
		for k := range gv {
			gv[k] = lattice.Meet(gv[k], cells.Globals[k])
		}
	}

	p.warmStarted = true
	p.coneProcs = len(cone)
	return cone
}

// callsIntoCone reports whether proc has a callee inside the cone —
// the boundary-caller test of the warm worklist seeding.
func (p *propagation) callsIntoCone(cone map[*ir.Proc]bool, proc *ir.Proc) bool {
	n := p.cg.Nodes[proc]
	if n == nil {
		return false
	}
	for _, m := range n.Callees {
		if cone[m.Proc] {
			return true
		}
	}
	return false
}

// warmStats assembles the stage-3 execution counters of this run.
func (p *propagation) warmStats() WarmStats {
	st := WarmStats{
		Started:   p.warmStarted,
		ConeProcs: p.coneProcs,
		Seeded:    p.seeded,
		Visited:   p.visited.Load(),
		Enqueued:  p.enqueued.Load(),
	}
	if !p.warmStarted {
		st.ConeProcs = len(p.prog.Procs)
	}
	return st
}
