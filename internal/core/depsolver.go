package core

import (
	"ipcp/internal/core/lattice"
	"ipcp/internal/ir"
	"ipcp/internal/sym"
)

// This file implements the dependence-driven propagation algorithm of
// Callahan et al. as an alternative to the paper's simple worklist
// (stage3Propagate). Instead of re-evaluating every jump function of a
// procedure whenever any of its VAL entries lowers, it records, for
// each (procedure, formal/global) input, exactly the jump-function
// instances whose support reads that input, and re-evaluates only
// those. Because the lattice has depth 2, every jump function is then
// evaluated O(|support|) times — the bound §3.1.5 quotes — instead of
// O(|VAL set|) times.
//
// Both solvers compute identical VAL sets (the tests check this); the
// benchmarks compare their jump-function evaluation counts and running
// time, reproducing the paper's cost discussion empirically.

// jfInstance is one jump function at one call site, feeding one target
// binding of the callee.
type jfInstance struct {
	caller *ir.Proc
	callee *ir.Proc
	expr   sym.Expr // nil = ⊥
	// Target binding in the callee: formal index, or global slot when
	// targetFormal < 0.
	targetFormal int
	targetGlobal int
}

// stage3PropagateDependence runs the dependence-driven solver. It
// replaces stage3Propagate when Config.DependenceSolver is set, and
// polls the cancellation hook per work item like the simple solver.
//
// A warm-started run (warm.go) builds the full instance and dependence
// index exactly as a cold one — propagation must be able to reach any
// instance — but seeds the worklist with only the instances targeting
// a cone procedure's (reset) cells. Instances targeting warm cells are
// never violated: the cone is closed under callees, so every caller of
// a warm procedure is itself warm, its cells never change during the
// solve, and the instance's contribution already sits at or above the
// seeded fixpoint cell.
func (p *propagation) stage3PropagateDependence() error {
	p.initVals()
	cone := p.warmPrep()

	// Build jump-function instances and the input → instances index.
	type inputKey struct {
		proc   *ir.Proc
		formal int // -1 for globals
		global int
	}
	var instances []*jfInstance
	deps := make(map[inputKey][]*jfInstance)

	addInstance := func(inst *jfInstance) {
		instances = append(instances, inst)
		leaves, _ := sym.Support(inst.expr)
		for _, leaf := range leaves {
			key := inputKey{proc: inst.caller, formal: leaf.FormalIndex, global: -1}
			if leaf.Global != nil {
				key = inputKey{proc: inst.caller, formal: -1, global: p.globalIndex[leaf.Global]}
			}
			deps[key] = append(deps[key], inst)
		}
	}

	// Only call sites in procedures reachable from main participate,
	// matching the simple solver (and keeping ⊤ = "never called").
	reach := p.cg.ReachableFromMain()
	for _, proc := range p.prog.Procs {
		if !reach[proc] {
			continue
		}
		for _, b := range proc.Blocks {
			for _, call := range b.Instrs {
				if call.Op != ir.OpCall {
					continue
				}
				site := p.sites[call]
				if site == nil {
					continue
				}
				for i, e := range site.Formal {
					addInstance(&jfInstance{
						caller: proc, callee: call.Callee, expr: e,
						targetFormal: i, targetGlobal: -1,
					})
				}
				for k, e := range site.Global {
					addInstance(&jfInstance{
						caller: proc, callee: call.Callee, expr: e,
						targetFormal: -1, targetGlobal: k,
					})
				}
			}
		}
	}

	// Seed: evaluate every instance once (callers still at ⊤ give ⊤,
	// which meets as the identity), then re-evaluate on input changes.
	// Warm runs seed only the instances feeding reset cells.
	work := make([]*jfInstance, 0, len(instances))
	queued := make(map[*jfInstance]bool, len(instances))
	for _, inst := range instances {
		if cone != nil && !cone[inst.callee] {
			continue
		}
		work = append(work, inst)
		queued[inst] = true
	}
	p.seeded = int64(len(work))
	watch := newDescentWatcher(p.cfg.Debug, "dependence")

	enqueueDependents := func(proc *ir.Proc, formal, global int) {
		key := inputKey{proc: proc, formal: formal, global: global}
		for _, inst := range deps[key] {
			if !queued[inst] {
				queued[inst] = true
				work = append(work, inst)
				p.enqueued.Add(1)
			}
		}
	}

	for len(work) > 0 {
		if p.cancel != nil {
			if err := p.cancel(); err != nil {
				return err
			}
		}
		inst := work[0]
		work = work[1:]
		queued[inst] = false
		p.solverPasses.Add(1)
		p.visited.Add(1)

		env := procEnv{p: p, at: inst.caller}
		v := p.evalJF(inst.expr, env)

		if inst.targetFormal >= 0 {
			cf := p.vals.formals[inst.callee]
			if inst.targetFormal >= len(cf) {
				continue
			}
			nv := lattice.Meet(cf[inst.targetFormal], v)
			if !nv.Equal(cf[inst.targetFormal]) {
				watch.observe(inst.callee, "formal", inst.targetFormal, cf[inst.targetFormal], nv)
				cf[inst.targetFormal] = nv
				enqueueDependents(inst.callee, inst.targetFormal, -1)
			}
			continue
		}
		cg := p.vals.globals[inst.callee]
		nv := lattice.Meet(cg[inst.targetGlobal], v)
		if !nv.Equal(cg[inst.targetGlobal]) {
			watch.observe(inst.callee, "global", inst.targetGlobal, cg[inst.targetGlobal], nv)
			cg[inst.targetGlobal] = nv
			enqueueDependents(inst.callee, -1, inst.targetGlobal)
		}
	}
	return nil
}

// initVals sets up the VAL sets (shared by both solvers).
func (p *propagation) initVals() {
	p.vals = &vals{
		formals: make(map[*ir.Proc][]lattice.Value, len(p.prog.Procs)),
		globals: make(map[*ir.Proc][]lattice.Value, len(p.prog.Procs)),
	}
	for _, proc := range p.prog.Procs {
		fv := make([]lattice.Value, len(proc.Formals))
		gv := make([]lattice.Value, len(p.prog.ScalarGlobals))
		for i := range fv {
			fv[i] = lattice.Top
			if proc.Formals[i].Type.IsArray() {
				fv[i] = lattice.Bottom
			}
		}
		for i := range gv {
			gv[i] = lattice.Top
		}
		p.vals.formals[proc] = fv
		p.vals.globals[proc] = gv
	}
	if main := p.prog.Main; main != nil {
		gv := p.vals.globals[main]
		for i := range gv {
			gv[i] = lattice.Bottom
		}
	}
}
