// Package clone implements goal-directed procedure cloning driven by
// interprocedural constants — the technique of Cooper, Hall & Kennedy
// and of Metzger & Stroud that the paper cites as a major consumer of
// CONSTANTS sets (§1, §5): "goal-directed cloning of procedures based
// on interprocedural constants can substantially increase the number of
// interprocedural constants available".
//
// The mechanism: when two call sites pass *different* constants to the
// same procedure, the meet over the edges is ⊥ and both constants are
// lost. Cloning the procedure per distinct incoming constant vector
// lets every version keep its own CONSTANTS set. This package partitions
// call sites by the jump-function vectors a propagation produced
// (core.Result.SiteVals), clones the profitable procedures, retargets
// the call sites, and reanalyzes — iterating, because one round of
// cloning can expose new opportunities in the clones' callees.
package clone

import (
	"fmt"
	"sort"

	"ipcp/internal/core"
	"ipcp/internal/core/lattice"
	"ipcp/internal/ir"
	"ipcp/internal/pass"
)

// Options bounds the transformation.
type Options struct {
	// MaxVersionsPerProc caps the versions of one procedure (including
	// the original). Default 4.
	MaxVersionsPerProc int

	// MaxRounds caps the clone→reanalyze iterations. Default 3.
	MaxRounds int
}

func (o *Options) fill() {
	if o.MaxVersionsPerProc == 0 {
		o.MaxVersionsPerProc = 4
	}
	if o.MaxRounds == 0 {
		o.MaxRounds = 3
	}
}

// Stats reports what one Apply did.
type Stats struct {
	ProceduresCloned int // procedures that received at least one clone
	ClonesCreated    int // new procedure versions
}

// group is one equivalence class of call sites: same incoming
// jump-function vector.
type group struct {
	sig   string
	sites []*ir.Instr
}

// Apply performs one round of cloning over the analyzed program in res.
// It returns a fresh pre-SSA program with clones added and call sites
// retargeted, plus statistics. When nothing is profitable the returned
// program is an unchanged copy and the stats are zero.
func Apply(res *core.Result, opts Options) (*ir.Program, Stats) {
	opts.fill()
	var stats Stats

	// Partition call sites by signature, walking the program in order
	// so grouping (and therefore clone naming) is deterministic.
	plans := make(map[*ir.Proc][]*group)
	bySig := make(map[*ir.Proc]map[string]*group)
	callerOf := make(map[*ir.Instr]*ir.Proc)
	for _, proc := range res.Prog.Procs {
		for _, b := range proc.Blocks {
			for _, call := range b.Instrs {
				if call.Op != ir.OpCall {
					continue
				}
				callerOf[call] = proc
				sv := res.SiteVals[call]
				if sv == nil {
					continue // unreachable caller
				}
				callee := call.Callee
				if callee.Kind == ir.MainProc {
					continue
				}
				sig := signature(sv)
				m := bySig[callee]
				if m == nil {
					m = make(map[string]*group)
					bySig[callee] = m
				}
				g := m[sig]
				if g == nil {
					g = &group{sig: sig}
					m[sig] = g
					plans[callee] = append(plans[callee], g)
				}
				g.sites = append(g.sites, call)
			}
		}
	}

	// Keep only profitable plans: >1 distinct signature, within the
	// version budget, and at least one position where the merged VAL is
	// not constant but some group supplies a constant (cloning recovers
	// a constant the meet destroyed).
	var cloneTargets []*ir.Proc
	for callee, groups := range plans {
		if len(groups) < 2 || len(groups) > opts.MaxVersionsPerProc {
			continue
		}
		if !profitable(res, callee, groups) {
			continue
		}
		cloneTargets = append(cloneTargets, callee)
	}
	sort.Slice(cloneTargets, func(i, j int) bool { return cloneTargets[i].Name < cloneTargets[j].Name })

	// Instruction correspondence: call instructions are matched between
	// the original and its clone by their non-phi index in block order.
	indexOf := make(map[*ir.Instr]int)
	for _, proc := range res.Prog.Procs {
		idx := 0
		for _, b := range proc.Blocks {
			for _, i := range b.Instrs {
				if i.Op == ir.OpPhi {
					continue
				}
				indexOf[i] = idx
				idx++
			}
		}
	}

	// Build the new program: the base version of every procedure...
	np := ir.NewProgram()
	np.Globals = res.Prog.Globals
	np.ScalarGlobals = res.Prog.ScalarGlobals
	for _, proc := range res.Prog.Procs {
		np.AddProc(proc.CloneStripSSA(nil, nil))
	}

	// ...plus the extra versions. Group 0 keeps the original name.
	type retarget struct {
		site    *ir.Instr
		caller  *ir.Proc
		newName string
	}
	var retargets []retarget
	for _, callee := range cloneTargets {
		stats.ProceduresCloned++
		for gi, g := range plans[callee][1:] {
			name := cloneName(np, callee.Name, gi+1)
			nproc := callee.CloneStripSSA(nil, nil)
			nproc.Name = name
			np.AddProc(nproc)
			stats.ClonesCreated++
			for _, site := range g.sites {
				retargets = append(retargets, retarget{site: site, caller: callerOf[site], newName: name})
			}
		}
	}

	// Repoint every call into the new program, then apply retargets.
	for _, proc := range np.Procs {
		for _, b := range proc.Blocks {
			for _, i := range b.Instrs {
				if i.Op == ir.OpCall {
					i.Callee = np.ProcByName[i.Callee.Name]
				}
			}
		}
	}
	for _, rt := range retargets {
		if rt.caller == nil {
			continue
		}
		nproc := np.ProcByName[rt.caller.Name]
		if site := instrAt(nproc, indexOf[rt.site]); site != nil && site.Op == ir.OpCall {
			site.Callee = np.ProcByName[rt.newName]
		}
	}
	return np, stats
}

// instrAt returns the want-th instruction of a pre-SSA procedure in
// block order (clones contain no phis, so plain counting matches the
// original's non-phi index).
func instrAt(proc *ir.Proc, want int) *ir.Instr {
	idx := 0
	for _, b := range proc.Blocks {
		for _, i := range b.Instrs {
			if idx == want {
				return i
			}
			idx++
		}
	}
	return nil
}

// profitable reports whether cloning callee would recover a constant.
func profitable(res *core.Result, callee *ir.Proc, groups []*group) bool {
	pr := res.Procs[callee.Name]
	if pr == nil {
		return false
	}
	check := func(merged []lattice.Value, pick func(*core.SiteValues) []lattice.Value) bool {
		for pos := range merged {
			if merged[pos].IsConst() {
				continue
			}
			for _, g := range groups {
				vals := pick(res.SiteVals[g.sites[0]])
				if pos < len(vals) && vals[pos].IsConst() {
					return true
				}
			}
		}
		return false
	}
	if check(pr.FormalVals, func(sv *core.SiteValues) []lattice.Value { return sv.Formals }) {
		return true
	}
	return check(pr.GlobalVals, func(sv *core.SiteValues) []lattice.Value { return sv.Globals })
}

// signature renders a site's incoming vector as a grouping key.
func signature(sv *core.SiteValues) string {
	s := ""
	for _, v := range sv.Formals {
		s += v.String() + ","
	}
	s += "|"
	for _, v := range sv.Globals {
		s += v.String() + ","
	}
	return s
}

// cloneName picks an unused name derived from base.
func cloneName(p *ir.Program, base string, n int) string {
	//lint:ignore cancelpoll n strictly increases past the finite set of taken names, so the probe terminates
	for {
		name := fmt.Sprintf("%s_C%d", base, n)
		if _, taken := p.ProcByName[name]; !taken {
			return name
		}
		n++
	}
}

// Result of an iterated clone-and-analyze run.
type Result struct {
	// Base is the analysis of the original program.
	Base *core.Result

	// Final is the analysis after cloning converged.
	Final *core.Result

	// Rounds is the number of cloning rounds applied.
	Rounds int

	// TotalClones counts all procedure versions created.
	TotalClones int
}

// clonePass is one cloning round as a pass: it consumes the current
// propagation result and replaces the program with the cloned,
// retargeted version. Requiring FactResult makes the runner reanalyze
// automatically at the start of every round after the first — the base
// result is seeded as the initial fact, so the already-analyzed input
// program is never reanalyzed, exactly as the hand-rolled loop worked.
type clonePass struct {
	opts  Options
	total int
}

func (c *clonePass) Name() string             { return "clone" }
func (c *clonePass) Requires() []pass.Fact    { return []pass.Fact{core.FactResult} }
func (c *clonePass) Invalidates() []pass.Fact { return nil } // SetProgram already drops everything

func (c *clonePass) Run(ctx *pass.Context) (bool, error) {
	v, ok := ctx.Fact(core.FactResult)
	if !ok {
		return false, fmt.Errorf("fact %q missing", core.FactResult)
	}
	np, stats := Apply(v.(*core.Result), c.opts)
	if stats.ClonesCreated == 0 {
		return false, nil
	}
	c.total += stats.ClonesCreated
	ctx.SetProgram(np)
	return true, nil
}

// AndAnalyze iterates propagation and cloning until no more clones are
// profitable (or the round budget runs out), reanalyzing after each
// round as Metzger & Stroud's compiler did. The iteration is a
// budgeted pass.Fixpoint — the round cap is a quality budget, not a
// convergence bound, so exhausting it is not an error; the final
// program is still reanalyzed (the cloning round invalidated the
// result fact, and the trailing Require re-provisions it).
func AndAnalyze(base *core.Result, cfg core.Config, opts Options) *Result {
	opts.fill()
	out := &Result{Base: base, Final: base}

	ctx := pass.NewContext(base.Prog)
	ctx.Debug = cfg.Debug
	ctx.SetFact(core.FactResult, base)
	reg := pass.NewRegistry()
	reg.Register(core.NewPropagate(cfg), core.FactResult)
	cp := &clonePass{opts: opts}
	fix := pass.NewBudgetedFixpoint("clone", cp, opts.MaxRounds)
	if err := pass.Run(ctx, reg, pass.NewPipeline("clone-and-analyze", fix)); err != nil {
		panic("clone: " + err.Error())
	}
	if err := ctx.Require(core.FactResult); err != nil {
		panic("clone: " + err.Error())
	}

	v, _ := ctx.Fact(core.FactResult)
	final := v.(*core.Result)
	out.Rounds = fix.Rounds()
	out.TotalClones = cp.total
	out.Final = final
	if final != base {
		final.Stats.Passes = ctx.PassStats()
	}
	return out
}
