package clone

import (
	"testing"

	"ipcp/internal/core"
	"ipcp/internal/core/jump"
	"ipcp/internal/mf/parser"
	"ipcp/internal/mf/sema"
	"ipcp/internal/suite"
)

func analyze(t *testing.T, src string) (*sema.Program, *core.Result) {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := sema.Analyze(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	cfg := core.Config{Jump: jump.Polynomial, ReturnJFs: true, MOD: true}
	return sp, core.Analyze(sp, cfg)
}

// Two call sites with different constants: the meet destroys both, and
// cloning recovers them.
const conflictSrc = `
PROGRAM MAIN
  CALL KERNEL(64)
  CALL KERNEL(128)
END
SUBROUTINE KERNEL(N)
  INTEGER N, I, S
  S = 0
  DO I = 1, N
    S = S + I
  ENDDO
  RETURN
END
`

func TestCloningRecoversConflictingConstants(t *testing.T) {
	_, base := analyze(t, conflictSrc)
	kernel := base.Procs["KERNEL"]
	if len(kernel.Constants) != 0 {
		t.Fatalf("base analysis should lose N to the meet: %v", kernel.Constants)
	}

	cfg := core.Config{Jump: jump.Polynomial, ReturnJFs: true, MOD: true}
	out := AndAnalyze(base, cfg, Options{})
	if out.TotalClones != 1 {
		t.Fatalf("clones = %d, want 1 (two versions total)", out.TotalClones)
	}
	// Both versions now hold their own constant.
	orig := out.Final.Procs["KERNEL"]
	cl := out.Final.Procs["KERNEL_C1"]
	if orig == nil || cl == nil {
		t.Fatalf("missing versions: %v", out.Final.Procs)
	}
	vals := map[int64]bool{}
	for _, pr := range []*core.ProcResult{orig, cl} {
		if len(pr.Constants) != 1 {
			t.Fatalf("%s constants: %v", pr.Name, pr.Constants)
		}
		vals[pr.Constants[0].Value] = true
	}
	if !vals[64] || !vals[128] {
		t.Fatalf("expected 64 and 128 across versions, got %v", vals)
	}
	if out.Final.TotalSubstituted <= base.TotalSubstituted {
		t.Fatalf("cloning should increase substitutions: %d vs %d",
			out.Final.TotalSubstituted, base.TotalSubstituted)
	}
}

func TestCloningRespectsVersionBudget(t *testing.T) {
	_, base := analyze(t, `
PROGRAM MAIN
  CALL K(1)
  CALL K(2)
  CALL K(3)
  CALL K(4)
  CALL K(5)
  CALL K(6)
END
SUBROUTINE K(N)
  INTEGER N, W
  W = N
  RETURN
END
`)
	np, stats := Apply(base, Options{MaxVersionsPerProc: 4})
	// Six distinct signatures exceed the budget: no cloning.
	if stats.ClonesCreated != 0 {
		t.Fatalf("budget exceeded but %d clones created", stats.ClonesCreated)
	}
	if len(np.Procs) != len(base.Prog.Procs) {
		t.Fatalf("program should be an unchanged copy")
	}
}

func TestCloningSkipsUniformSites(t *testing.T) {
	// All sites agree: nothing to recover, no clones.
	_, base := analyze(t, `
PROGRAM MAIN
  CALL K(7)
  CALL K(7)
END
SUBROUTINE K(N)
  INTEGER N, W
  W = N
  RETURN
END
`)
	if v, ok := constOf(base, "K", "N"); !ok || v != 7 {
		t.Fatalf("K.N should already be 7")
	}
	_, stats := Apply(base, Options{})
	if stats.ClonesCreated != 0 {
		t.Fatalf("uniform sites must not clone, got %d", stats.ClonesCreated)
	}
}

func constOf(res *core.Result, proc, name string) (int64, bool) {
	pr := res.Procs[proc]
	if pr == nil {
		return 0, false
	}
	for _, c := range pr.Constants {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// Cloning cascades: specializing a middle procedure exposes constants
// one level deeper on the next round.
func TestCloningIterates(t *testing.T) {
	_, base := analyze(t, `
PROGRAM MAIN
  CALL MID(10)
  CALL MID(20)
END
SUBROUTINE MID(N)
  INTEGER N
  CALL LEAF(N)
  RETURN
END
SUBROUTINE LEAF(M)
  INTEGER M, W
  W = M * 2
  RETURN
END
`)
	cfg := core.Config{Jump: jump.Polynomial, ReturnJFs: true, MOD: true}
	out := AndAnalyze(base, cfg, Options{})
	if out.Rounds < 2 {
		t.Fatalf("expected a cascading second round, got %d", out.Rounds)
	}
	// After convergence every LEAF version sees a constant.
	found := 0
	for name, pr := range out.Final.Procs {
		if name == "LEAF" || name == "LEAF_C1" {
			if len(pr.Constants) == 1 {
				found++
			}
		}
	}
	if found != 2 {
		t.Fatalf("both LEAF versions should hold constants, got %d", found)
	}
}

// The suite's shared sinks (deliberately fed conflicting constants)
// are exactly what cloning specializes; the counts must go up on the
// programs that have them and never go down anywhere.
func TestCloningOnSuite(t *testing.T) {
	cfg := core.Config{Jump: jump.Polynomial, ReturnJFs: true, MOD: true}
	improved := 0
	for _, name := range suite.Names() {
		src := suite.Generate(name, 2).Source
		f, err := parser.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := sema.Analyze(f)
		if err != nil {
			t.Fatal(err)
		}
		base := core.Analyze(sp, cfg)
		out := AndAnalyze(base, cfg, Options{MaxVersionsPerProc: 16, MaxRounds: 2})
		if out.Final.TotalSubstituted < base.TotalSubstituted {
			t.Errorf("%s: cloning lost substitutions: %d -> %d",
				name, base.TotalSubstituted, out.Final.TotalSubstituted)
		}
		if out.Final.TotalSubstituted > base.TotalSubstituted {
			improved++
		}
	}
	if improved < 4 {
		t.Errorf("cloning should improve several suite programs, improved %d", improved)
	}
}
