package core

import (
	"fmt"

	"ipcp/internal/ir"
	"ipcp/internal/pass"
)

// FactResult is the pass-manager fact under which the interprocedural
// propagation result (*Result) is published. Passes that consume the
// analysis (DCE, cloning) declare it in Requires; the runner then
// re-propagates automatically whenever a transformation invalidated it.
const FactResult pass.Fact = "ipcp-result"

// Propagate is the four-stage interprocedural constant propagation
// (§4.1) as a pass: return jump functions bottom-up, forward jump
// functions via value numbering, VAL-set propagation, CONSTANTS
// recording. It publishes its *Result as FactResult. It reports
// changed=true because SSA construction rewrites the program in place.
type Propagate struct {
	cfg  Config
	last *Result

	// Incremental reuse (AnalyzeSeeded): seeds are injected — and the
	// finished summaries captured — only for the run over seedProg, the
	// program the seeds were bound against. Complete-propagation reruns
	// execute over DCE-rebuilt programs that no longer correspond to
	// any stored summary, so they run fresh, exactly as from scratch.
	seedProg *ir.Program
	seeds    map[string]*ProcSeed
	captured *Summaries

	// warm is the previous fixpoint for demand-driven stage-3
	// re-solving; like the seeds, it applies only to the run over
	// seedProg — complete-mode re-propagations over DCE-rebuilt
	// programs solve cold, exactly as from scratch.
	warm *WarmSeed
}

// NewPropagate builds the propagation pass for one configuration
// (defaults filled).
func NewPropagate(cfg Config) *Propagate {
	return &Propagate{cfg: cfg.withDefaults()}
}

func (p *Propagate) Name() string             { return "propagate" }
func (p *Propagate) Requires() []pass.Fact    { return nil }
func (p *Propagate) Invalidates() []pass.Fact { return nil }

// Run executes stages 1–4 over the Context's current program, sharing
// the Context's callgraph and mod/ref caches. The callgraph is taken
// before SSA construction mutates call instructions — order matters.
func (p *Propagate) Run(ctx *pass.Context) (bool, error) {
	prog := ctx.Program()
	var reuse map[*ir.Proc]*ProcSeed
	capture := false
	if p.seedProg != nil && prog == p.seedProg {
		capture = true
		reuse = resolveSeeds(prog, ctx.CallGraph(), p.seeds)
	}
	pr := newPropagation(prog, p.cfg, ctx.CallGraph(), ctx.ModRef(), reuse)
	pr.cancel = ctx.Cancel
	if capture {
		pr.warm = p.warm
	}
	pr.buildSSA()
	pr.stage1ReturnJFs()
	if err := ctx.Canceled(); err != nil {
		// SSA construction already rewrote the program in place.
		return true, err
	}
	pr.stage2ForwardJFs()
	var err error
	if p.cfg.DependenceSolver {
		err = pr.stage3PropagateDependence()
	} else {
		err = pr.stage3Propagate()
	}
	if err != nil {
		return true, err
	}
	p.last = pr.stage4Record()
	if capture {
		p.captured = pr.extractSummaries()
	}
	ctx.SetFact(FactResult, p.last)
	return true, nil
}

// Result returns the most recent propagation outcome.
func (p *Propagate) Result() *Result { return p.last }

// plan is the declared pass composition for one configuration: the
// propagation pass registered as the ipcp-result provider, and either
// a plain pipeline or the complete-propagation DCE fixpoint as root.
type plan struct {
	prop *Propagate
	fix  *pass.Fixpoint
	reg  *pass.Registry
	root pass.Pass
}

// newPlan declares the pipeline for cfg. In complete mode the root is
// a fixpoint over DCE alone: DCE requires FactResult, so the runner
// inserts a fresh propagation at the start of every round (and skips
// the redundant one after the round that found nothing to remove).
func newPlan(cfg Config) *plan {
	return newPlanWith(cfg.withDefaults(), NewPropagate(cfg))
}

// newPlanWith builds the plan around a caller-prepared propagation
// pass (the seeded one, for incremental runs); the composition is
// identical to newPlan's, so seeded and scratch runs produce the same
// pass trace.
func newPlanWith(cfg Config, prop *Propagate) *plan {
	cfg = cfg.withDefaults()
	pl := &plan{prop: prop, reg: pass.NewRegistry()}
	pl.reg.Register(pl.prop, FactResult)
	if cfg.Complete {
		pl.fix = pass.NewFixpoint("complete", &dcePass{}, cfg.MaxDCERounds)
		pl.root = pass.NewPipeline("complete-propagation", pl.fix)
	} else {
		pl.root = pass.NewPipeline("propagation", pl.prop)
	}
	return pl
}

// PipelineDescription renders the pass composition a configuration
// would execute, one line per element (cmd/ipcp -passes).
func PipelineDescription(cfg Config) []string {
	pl := newPlan(cfg)
	return []string{
		pass.Describe(pl.root),
		fmt.Sprintf("provider: %s <- %s", FactResult, pl.prop.Name()),
	}
}
