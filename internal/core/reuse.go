package core

import (
	"ipcp/internal/analysis/callgraph"
	"ipcp/internal/analysis/modref"
	"ipcp/internal/core/jump"
	"ipcp/internal/core/lattice"
	"ipcp/internal/ir"
	"ipcp/internal/pass"
	"ipcp/internal/sym"
)

// This file is core's half of the incremental re-analysis contract
// (internal/incr holds the other half): a caller that knows some
// procedures are unchanged since a previous run hands their stored
// stage-1/stage-2 outputs in as seeds, the propagation injects them
// instead of re-deriving (skipping value numbering and jump-function
// construction for those procedures), and the finished run hands back
// the summaries of every procedure so the caller can persist them.
//
// Soundness is entirely the caller's burden — a seed must be exactly
// what re-deriving would produce, which internal/incr guarantees by
// invalidating every procedure whose forward call cone changed. Core
// only checks structural compatibility (resolveSeeds) and silently
// drops any seed that does not fit: dropping a seed is always safe, it
// merely costs the re-derivation.

// SeedSite carries the stored forward jump functions of one call site,
// already bound to the current program's sym leaves. Vector lengths
// must match the fresh derivation: one entry per callee formal and one
// per scalar global (nil = ⊥).
type SeedSite struct {
	Formal []sym.Expr
	Global []sym.Expr
}

// SharedSeed is the stage-1 (flavor-invariant) half of a seed: the
// procedure's return jump functions (nil when none were built) and the
// cached substitution-use vectors that let stage 4 count without the
// procedure ever being converted to SSA form. It mirrors
// summary.SharedSummary — nothing in it depends on the forward
// jump-function flavor.
type SharedSeed struct {
	Returns *jump.Returns
	Uses    *ProcUses
}

// ProcSeed is everything stage 1 and stage 2 would compute for one
// unchanged procedure: the shared stage-1 half plus the
// flavor-dependent jump functions of each call site in body order. A
// usable seed needs both halves — stage 2 replays Sites instead of
// re-deriving, so a seed without them cannot be injected.
type ProcSeed struct {
	SharedSeed
	Sites []*SeedSite
}

// Reuse is the seeded-analysis input: the pre-SSA callgraph and
// mod/ref summaries the caller already built for the program (shared
// into the pass Context so they are not recomputed), plus the seeds by
// procedure name. Any field may be nil.
type Reuse struct {
	CG    *callgraph.Graph
	Mods  *modref.Summary
	Procs map[string]*ProcSeed

	// Warm, when non-nil, warm-starts the stage-3 solve from the
	// previous run's fixpoint (warm.go). Like Procs, it applies to the
	// first propagation only; soundness of the seed is the caller's
	// burden, discharged by internal/incr's dirty-set rules plus the
	// jump-function fingerprint diff core performs itself.
	Warm *WarmSeed
}

// Summaries is the extraction a seeded run hands back: the return jump
// functions and call-site jump functions of every procedure (seeded
// ones included), keyed by name, with sites in callgraph body order.
// The expressions alias the analyzed program's IR; internal/summary
// makes them portable.
type Summaries struct {
	Returns map[string]*jump.Returns
	Sites   map[string][]*jump.Site

	// Uses holds the substitution-use vectors of every procedure the run
	// derived fresh (seeded procedures keep the vectors they came with).
	Uses map[string]*ProcUses

	// Vals holds the final stage-3 VAL assignment of every procedure
	// and SiteHash its jump-function fingerprint — the warm-start seed
	// and its validity guard, persisted into the next snapshot. In
	// complete mode both describe the first propagation (the one over
	// the original program), which is exactly what the next incremental
	// run's first propagation re-solves.
	Vals     map[string]ProcCells
	SiteHash map[string]string

	// Warm reports how the stage-3 solve executed.
	Warm WarmStats
}

// AnalyzeSeeded runs one configured analysis over a fresh pre-SSA
// program with stored summaries injected for the seeded procedures,
// and additionally extracts the summaries of the (first) propagation
// so the caller can persist them. The Result is identical to Analyze
// on the same program — seeds only short-circuit derivations whose
// outcome is already known. In complete mode the seeds apply to the
// first propagation only; the post-DCE re-propagations run fresh,
// exactly as they do from scratch. The error is non-nil only when
// cfg.Cancel reported cancellation mid-run.
func AnalyzeSeeded(irp *ir.Program, cfg Config, reuse *Reuse) (*Result, *Summaries, error) {
	cfg = cfg.withDefaults()
	prop := NewPropagate(cfg)
	prop.seedProg = irp
	ctx := pass.NewContext(irp)
	if reuse != nil {
		prop.seeds = reuse.Procs
		prop.warm = reuse.Warm
		ctx = pass.NewContextWith(irp, reuse.CG, reuse.Mods)
	}
	res, err := runPlan(newPlanWith(cfg, prop), ctx, cfg)
	if err != nil {
		return nil, nil, err
	}
	return res, prop.captured, nil
}

// resolveSeeds binds named seeds to procedures of prog, dropping any
// seed that does not structurally match the current program: a missing
// procedure, a call-site count or vector-length mismatch, or return
// jump functions for a procedure the scratch analysis would give none
// (a recursive one). The survivors are safe to inject verbatim.
func resolveSeeds(prog *ir.Program, cg *callgraph.Graph, seeds map[string]*ProcSeed) map[*ir.Proc]*ProcSeed {
	if len(seeds) == 0 {
		return nil
	}
	out := make(map[*ir.Proc]*ProcSeed, len(seeds))
	for name, seed := range seeds {
		proc := prog.ProcByName[name]
		if proc == nil || seed == nil {
			continue
		}
		n := cg.Nodes[proc]
		if n == nil || len(seed.Sites) != len(n.Sites) {
			continue
		}
		if seed.Returns != nil &&
			(cg.InCycle(n) || len(seed.Returns.Formal) != len(proc.Formals)) {
			continue
		}
		if seed.Uses == nil ||
			len(seed.Uses.Formal) != len(proc.Formals) ||
			len(seed.Uses.Global) != len(proc.GlobalVars) {
			continue
		}
		ok := true
		for i, call := range n.Sites {
			ss := seed.Sites[i]
			if ss == nil ||
				len(ss.Formal) != len(call.Callee.Formals) ||
				len(ss.Global) != len(prog.ScalarGlobals) {
				ok = false
				break
			}
		}
		if ok {
			out[proc] = seed
		}
	}
	return out
}

// extractSummaries collects the per-procedure summaries of a finished
// propagation, in deterministic callgraph order.
func (p *propagation) extractSummaries() *Summaries {
	s := &Summaries{
		Returns:  make(map[string]*jump.Returns, len(p.prog.Procs)),
		Sites:    make(map[string][]*jump.Site, len(p.prog.Procs)),
		Uses:     make(map[string]*ProcUses, len(p.prog.Procs)),
		Vals:     make(map[string]ProcCells, len(p.prog.Procs)),
		SiteHash: p.siteFingerprints(),
		Warm:     p.warmStats(),
	}
	for _, n := range p.cg.TopDown() {
		if r := p.retJFs.Get(n.Proc); r != nil {
			s.Returns[n.Proc.Name] = r
		}
		sites := make([]*jump.Site, len(n.Sites))
		for i, call := range n.Sites {
			sites[i] = p.sites[call]
		}
		s.Sites[n.Proc.Name] = sites
		s.Vals[n.Proc.Name] = ProcCells{
			Formals: append([]lattice.Value(nil), p.vals.formals[n.Proc]...),
			Globals: append([]lattice.Value(nil), p.vals.globals[n.Proc]...),
		}
		// Seeded procedures may have skipped SSA; their use vectors live
		// in the seed and their summaries are already stored.
		if p.reuse[n.Proc] == nil {
			s.Uses[n.Proc.Name] = p.collectUses(n.Proc)
		}
	}
	return s
}
