package core

import (
	"testing"

	"ipcp/internal/core/jump"
	"ipcp/internal/mf/parser"
	"ipcp/internal/mf/sema"
	"ipcp/internal/suite"
)

// A procedure with no formals and no globals never has its VAL set
// lowered, but its call sites must still fire (regression: the original
// worklist only enqueued procedures whose VAL sets changed).
func TestSolverVisitsParameterlessProcedures(t *testing.T) {
	res := analyzeSrc(t, `
PROGRAM MAIN
  CALL MIDDLE
END
SUBROUTINE MIDDLE
  CALL LEAF(9)
  RETURN
END
SUBROUTINE LEAF(N)
  INTEGER N, W
  W = N
  RETURN
END
`, cfgAll(jump.Polynomial))
	if v, ok := constVal(res, "LEAF", "N"); !ok || v != 9 {
		t.Fatalf("LEAF.N = %v,%v want 9 (parameterless MIDDLE must be visited)", v, ok)
	}
}

// Call sites inside procedures unreachable from main must not
// contribute constants (the paper: ⊤ only if never called).
func TestDeadCallSitesDoNotFire(t *testing.T) {
	res := analyzeSrc(t, `
PROGRAM MAIN
  INTEGER X
  X = 0
END
SUBROUTINE DEADCALLER
  CALL VICTIM(5)
  RETURN
END
SUBROUTINE VICTIM(N)
  INTEGER N, W
  W = N
  RETURN
END
`, cfgAll(jump.Polynomial))
	pr := res.Procs["VICTIM"]
	if !pr.FormalVals[0].IsTop() {
		t.Fatalf("VICTIM.N = %v, want ⊤ (only a dead caller passes it)", pr.FormalVals[0])
	}
}

// The dependence-driven solver must compute exactly the same results as
// the simple worklist on every benchmark program under every flavor.
func TestDependenceSolverEquivalence(t *testing.T) {
	for _, name := range suite.Names() {
		src := suite.Generate(name, 2).Source
		f, err := parser.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := sema.Analyze(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range jump.Kinds {
			simple := Analyze(sp, Config{Jump: kind, ReturnJFs: true, MOD: true})
			dep := Analyze(sp, Config{Jump: kind, ReturnJFs: true, MOD: true, DependenceSolver: true})
			if simple.TotalSubstituted != dep.TotalSubstituted ||
				simple.TotalConstants != dep.TotalConstants {
				t.Errorf("%s/%v: solver mismatch: simple %d/%d vs dependence %d/%d",
					name, kind,
					simple.TotalSubstituted, simple.TotalConstants,
					dep.TotalSubstituted, dep.TotalConstants)
			}
			// Per-procedure agreement too.
			for pname, spr := range simple.Procs {
				dpr := dep.Procs[pname]
				if len(spr.Constants) != len(dpr.Constants) {
					t.Errorf("%s/%v/%s: constants differ: %v vs %v",
						name, kind, pname, spr.Constants, dpr.Constants)
					continue
				}
				for i := range spr.Constants {
					if spr.Constants[i] != dpr.Constants[i] {
						t.Errorf("%s/%v/%s: constant %d differs: %v vs %v",
							name, kind, pname, i, spr.Constants[i], dpr.Constants[i])
					}
				}
			}
		}
	}
}

// The dependence-driven solver should evaluate each jump function a
// bounded number of times: at most 1 + 2·|support| evaluations per
// instance (each support member can lower at most twice). The simple
// solver has no such per-instance bound.
func TestDependenceSolverEvaluationBound(t *testing.T) {
	for _, name := range []string{"ocean", "matrix300", "simple"} {
		src := suite.Generate(name, 4).Source
		f, _ := parser.Parse(src)
		sp, _ := sema.Analyze(f)
		dep := Analyze(sp, Config{Jump: jump.Polynomial, ReturnJFs: true, MOD: true, DependenceSolver: true})
		// Instances ≈ evaluations at the seed; each can re-run at most
		// twice per support member, and supports here have ≤ 2 leaves.
		if dep.JFEvaluations > 5*dep.SolverPasses+5 {
			t.Errorf("%s: dependence solver made %d evaluations over %d instance visits",
				name, dep.JFEvaluations, dep.SolverPasses)
		}
	}
}

func TestDependenceSolverOnCoreScenarios(t *testing.T) {
	for _, src := range []string{literalSrc, passThroughSrc, polynomialSrc, oceanSrc, modSrc} {
		sp := mustSema(t, src)
		for _, kind := range jump.Kinds {
			a := Analyze(sp, Config{Jump: kind, ReturnJFs: true, MOD: true})
			b := Analyze(sp, Config{Jump: kind, ReturnJFs: true, MOD: true, DependenceSolver: true})
			if a.TotalSubstituted != b.TotalSubstituted {
				t.Errorf("%v: %d vs %d", kind, a.TotalSubstituted, b.TotalSubstituted)
			}
		}
	}
}
