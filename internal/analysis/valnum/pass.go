package valnum

import (
	"ipcp/internal/ir"
	"ipcp/internal/pass"
)

// FactResults is the pass-manager fact under which per-procedure value
// numberings (map[*ir.Proc]*Result) are published.
const FactResults pass.Fact = "valnum"

// Pass value-numbers every procedure (without return jump functions —
// the interprocedural propagation drives valnum itself when it needs
// callee summaries) and publishes the results as FactResults. It
// builds SSA first where missing.
type Pass struct {
	results map[*ir.Proc]*Result
}

// NewPass builds the whole-program value-numbering pass.
func NewPass() *Pass { return &Pass{} }

func (p *Pass) Name() string             { return "valnum" }
func (p *Pass) Requires() []pass.Fact    { return nil }
func (p *Pass) Invalidates() []pass.Fact { return nil }

func (p *Pass) Run(ctx *pass.Context) (bool, error) {
	changed := pass.EnsureSSA(ctx)
	prog := ctx.Program()
	p.results = make(map[*ir.Proc]*Result, len(prog.Procs))
	for _, proc := range prog.Procs {
		p.results[proc] = Analyze(proc, nil)
	}
	ctx.SetFact(FactResults, p.results)
	return changed, nil
}

// Results returns the per-procedure numberings of the last Run.
func (p *Pass) Results() map[*ir.Proc]*Result { return p.results }
