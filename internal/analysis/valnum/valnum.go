// Package valnum implements SSA-based global value numbering producing
// symbolic expressions: for every SSA value of a procedure it computes a
// sym.Expr over the procedure's entry values (formals and globals),
// integer constants, and opaque unknowns.
//
// This is the substrate the paper builds jump functions on (§3): the
// expression computed for an actual parameter at a call site *is* the
// polynomial jump function; restricting its shape yields the
// pass-through, intraprocedural-constant, and literal variants.
//
// Value numbering is pessimistic: blocks are visited in reverse
// postorder and a phi whose back-edge operand has not been computed yet
// becomes an unknown keyed by its own SSA id. Congruent computations
// (same operator over congruent operands) receive equal expressions.
//
// Return jump functions of callees feed in through the ReturnEval hook:
// when the hook can show a call-modified binding (or function result)
// has a known constant value at this site, the CallDef's expression is
// that constant instead of an unknown — the mechanism behind the ocean
// initialization-routine result in the paper's Table 2.
package valnum

import (
	"ipcp/internal/ir"
	"ipcp/internal/sym"
)

// ReturnEval supplies return-jump-function evaluation during value
// numbering. argExpr gives the symbolic expression of the call's i-th
// argument (actuals first, then the implicit global uses in
// Program.ScalarGlobals order). Implementations return nil when the
// binding's post-call value is unknown.
type ReturnEval interface {
	CallDefExpr(call *ir.Instr, def *ir.Value, argExpr func(int) sym.Expr) sym.Expr
}

// Result maps every SSA value of one procedure to its symbolic
// expression.
type Result struct {
	Proc  *ir.Proc
	exprs map[*ir.Value]sym.Expr
}

// ExprOf returns the expression of an SSA value (nil for untracked
// values, which callers treat as unknown).
func (r *Result) ExprOf(v *ir.Value) sym.Expr {
	if v == nil {
		return nil
	}
	return r.exprs[v]
}

// OperandExpr returns the expression of an instruction operand: integer
// constants map to sym.Const, variable uses to their SSA value's
// expression, and everything else (reals, logicals, arrays) to nil.
func (r *Result) OperandExpr(op ir.Operand) sym.Expr {
	if op.Const != nil {
		if op.Const.Type == ir.Int {
			return sym.NewConst(op.Const.Int)
		}
		return nil
	}
	return r.ExprOf(op.Val)
}

// run seeds the entry values and visits every reachable instruction in
// reverse postorder.
func (a *analyzer) run() {
	p := a.proc
	// Entry values first.
	for v, val := range p.EntryValues {
		switch {
		case val.Kind == ir.EntryDef && v.Kind == ir.FormalVar:
			a.exprs[val] = &sym.Formal{Index: v.Index, Name: v.Name}
		case val.Kind == ir.EntryDef && v.Kind == ir.GlobalRefVar:
			a.exprs[val] = &sym.GlobalEntry{G: v.Global}
		default:
			a.exprs[val] = &sym.Unknown{ID: val.ID}
		}
	}

	rpo := p.ComputeRPO()
	for _, b := range rpo {
		for _, i := range b.Instrs {
			a.visit(i)
		}
	}
}

// Analyze value-numbers a procedure in SSA form. re may be nil (every
// call-modified binding becomes unknown).
func Analyze(p *ir.Proc, re ReturnEval) *Result {
	a := &analyzer{
		proc:  p,
		re:    re,
		exprs: make(map[*ir.Value]sym.Expr),
	}
	a.run()
	return &Result{Proc: p, exprs: a.exprs}
}

type analyzer struct {
	proc  *ir.Proc
	re    ReturnEval
	exprs map[*ir.Value]sym.Expr
}

// unknown returns the opaque expression for an SSA value.
func (a *analyzer) unknown(v *ir.Value) sym.Expr { return &sym.Unknown{ID: v.ID} }

// operandExpr mirrors Result.OperandExpr during analysis.
func (a *analyzer) operandExpr(op ir.Operand) sym.Expr {
	if op.Const != nil {
		if op.Const.Type == ir.Int {
			return sym.NewConst(op.Const.Int)
		}
		return nil
	}
	if op.Val == nil {
		return nil
	}
	return a.exprs[op.Val]
}

func (a *analyzer) visit(i *ir.Instr) {
	switch i.Op {
	case ir.OpPhi:
		a.visitPhi(i)
		return
	case ir.OpCall:
		a.visitCall(i)
		return
	}
	if i.Dst == nil {
		return
	}
	// Only integer scalar results carry symbolic values; the paper
	// propagates integer constants only.
	if i.Var == nil || i.Var.Type != ir.Int {
		a.exprs[i.Dst] = a.unknown(i.Dst)
		return
	}
	switch i.Op {
	case ir.OpCopy:
		if e := a.operandExpr(i.Args[0]); e != nil {
			a.exprs[i.Dst] = e
			return
		}
	case ir.OpNeg, ir.OpAbs, ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv,
		ir.OpPow, ir.OpMod, ir.OpMin, ir.OpMax:
		args := make([]sym.Expr, len(i.Args))
		ok := true
		for k := range i.Args {
			args[k] = a.operandExpr(i.Args[k])
			if args[k] == nil {
				ok = false
				break
			}
		}
		if ok {
			if e := sym.MakeOp(i.Op, args...); e != nil {
				a.exprs[i.Dst] = e
				return
			}
		}
	}
	// ALoad, Read, conversions, failed folds: opaque.
	a.exprs[i.Dst] = a.unknown(i.Dst)
}

func (a *analyzer) visitPhi(i *ir.Instr) {
	var common sym.Expr
	for k := range i.Args {
		e := a.operandExpr(i.Args[k])
		if e == nil {
			// Back-edge operand not computed yet (pessimistic), or an
			// untracked value.
			common = nil
			break
		}
		if common == nil {
			common = e
			continue
		}
		if !sym.Equal(common, e) {
			common = nil
			break
		}
	}
	if common != nil {
		a.exprs[i.Dst] = common
		return
	}
	a.exprs[i.Dst] = a.unknown(i.Dst)
}

func (a *analyzer) visitCall(i *ir.Instr) {
	argExpr := func(k int) sym.Expr {
		if k < 0 || k >= len(i.Args) {
			return nil
		}
		return a.operandExpr(i.Args[k])
	}
	if i.Dst != nil { // function result
		var e sym.Expr
		if a.re != nil {
			e = a.re.CallDefExpr(i, i.Dst, argExpr)
		}
		if e == nil {
			e = a.unknown(i.Dst)
		}
		a.exprs[i.Dst] = e
	}
	for _, def := range i.CallDefs {
		if def == nil {
			continue
		}
		var e sym.Expr
		if a.re != nil {
			e = a.re.CallDefExpr(i, def, argExpr)
		}
		if e == nil {
			e = a.unknown(def)
		}
		a.exprs[def] = e
	}
}
