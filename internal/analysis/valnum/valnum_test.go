package valnum

import (
	"testing"

	"ipcp/internal/ir"
	"ipcp/internal/ir/irbuild"
	"ipcp/internal/mf/parser"
	"ipcp/internal/mf/sema"
	"ipcp/internal/sym"
)

func buildSSA(t *testing.T, src string, oracle ir.ModOracle) *ir.Program {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := sema.Analyze(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	p := irbuild.Build(sp)
	for _, proc := range p.Procs {
		proc.BuildSSA(oracle)
	}
	return p
}

type noMod struct{}

func (noMod) ModifiesFormal(*ir.Proc, int) bool           { return false }
func (noMod) ModifiesGlobal(*ir.Proc, *ir.GlobalVar) bool { return false }

// findCall returns the first call instruction in proc.
func findCall(t *testing.T, proc *ir.Proc) *ir.Instr {
	t.Helper()
	for _, b := range proc.Blocks {
		for _, i := range b.Instrs {
			if i.Op == ir.OpCall {
				return i
			}
		}
	}
	t.Fatalf("no call in %s", proc.Name)
	return nil
}

func TestActualExpressions(t *testing.T) {
	p := buildSSA(t, `
PROGRAM MAIN
  INTEGER N, M
  N = 10
  M = N*2 + 1
  CALL S(N, M, N, 42, M-N)
END
SUBROUTINE S(A, B, C, D, E)
  INTEGER A, B, C, D, E
  A = B
  RETURN
END
`, noMod{})
	main := p.ProcByName["MAIN"]
	vn := Analyze(main, nil)
	call := findCall(t, main)

	// N = 10 intraprocedurally.
	if e, ok := vn.OperandExpr(call.Args[0]).(*sym.Const); !ok || e.Val != 10 {
		t.Errorf("arg0 expr = %v, want 10", vn.OperandExpr(call.Args[0]))
	}
	// M = 21.
	if e, ok := vn.OperandExpr(call.Args[1]).(*sym.Const); !ok || e.Val != 21 {
		t.Errorf("arg1 expr = %v, want 21", vn.OperandExpr(call.Args[1]))
	}
	// Congruence: args 0 and 2 are the same value.
	if !sym.Equal(vn.OperandExpr(call.Args[0]), vn.OperandExpr(call.Args[2])) {
		t.Error("args 0 and 2 should be congruent")
	}
	// Literal.
	if e, ok := vn.OperandExpr(call.Args[3]).(*sym.Const); !ok || e.Val != 42 {
		t.Errorf("arg3 expr = %v", vn.OperandExpr(call.Args[3]))
	}
	// M-N = 11 folds through the expression temp.
	if e, ok := vn.OperandExpr(call.Args[4]).(*sym.Const); !ok || e.Val != 11 {
		t.Errorf("arg4 expr = %v, want 11", vn.OperandExpr(call.Args[4]))
	}
}

func TestPassThroughAndPolynomial(t *testing.T) {
	p := buildSSA(t, `
PROGRAM MAIN
  CALL MID(4, 5)
END
SUBROUTINE MID(X, Y)
  INTEGER X, Y
  CALL LEAF(X, 2*X + Y, X*Y)
  RETURN
END
SUBROUTINE LEAF(A, B, C)
  INTEGER A, B, C
  A = B + C
  RETURN
END
`, noMod{})
	mid := p.ProcByName["MID"]
	vn := Analyze(mid, nil)
	call := findCall(t, mid)

	// X passes through unmodified: expression is exactly Formal(0).
	if f, ok := vn.OperandExpr(call.Args[0]).(*sym.Formal); !ok || f.Index != 0 {
		t.Errorf("arg0 = %v, want formal 0", vn.OperandExpr(call.Args[0]))
	}
	// 2*X+Y is a closed polynomial over formals 0 and 1.
	e1 := vn.OperandExpr(call.Args[1])
	leaves, closed := sym.Support(e1)
	if !closed || len(leaves) != 2 {
		t.Errorf("arg1 = %v (closed=%v leaves=%v)", e1, closed, leaves)
	}
	// X*Y likewise.
	if !sym.IsClosed(vn.OperandExpr(call.Args[2])) {
		t.Errorf("arg2 = %v", vn.OperandExpr(call.Args[2]))
	}
}

func TestGlobalEntryExpressions(t *testing.T) {
	p := buildSSA(t, `
PROGRAM MAIN
  COMMON /B/ G
  INTEGER G
  G = 7
  CALL S
END
SUBROUTINE S
  COMMON /B/ G
  INTEGER G, L
  L = G + 1
  CALL LEAF
  RETURN
END
SUBROUTINE LEAF
  COMMON /B/ G
  INTEGER G
  G = G
  RETURN
END
`, noMod{})
	s := p.ProcByName["S"]
	vn := Analyze(s, nil)
	call := findCall(t, s)
	// The implicit global use at the call site: G unmodified since
	// entry, so the expression is GlobalEntry(G).
	gArg := call.Args[call.NumActuals]
	if ge, ok := vn.OperandExpr(gArg).(*sym.GlobalEntry); !ok || ge.G != p.Globals[0] {
		t.Errorf("global arg = %v", vn.OperandExpr(gArg))
	}
	// In MAIN, G = 7 at the call site.
	main := p.ProcByName["MAIN"]
	vnm := Analyze(main, nil)
	mcall := findCall(t, main)
	if c, ok := vnm.OperandExpr(mcall.Args[0]).(*sym.Const); !ok || c.Val != 7 {
		t.Errorf("main global arg = %v, want 7", vnm.OperandExpr(mcall.Args[0]))
	}
}

func TestPhiMergesEqualValues(t *testing.T) {
	p := buildSSA(t, `
PROGRAM MAIN
  INTEGER A, B
  B = 0
  IF (B .GT. 0) THEN
    A = 5
  ELSE
    A = 5
  ENDIF
  CALL S(A)
END
SUBROUTINE S(X)
  INTEGER X
  X = X
  RETURN
END
`, noMod{})
	main := p.ProcByName["MAIN"]
	vn := Analyze(main, nil)
	call := findCall(t, main)
	if c, ok := vn.OperandExpr(call.Args[0]).(*sym.Const); !ok || c.Val != 5 {
		t.Errorf("phi(5,5) should fold to 5, got %v", vn.OperandExpr(call.Args[0]))
	}
}

func TestPhiDistinctValuesUnknown(t *testing.T) {
	p := buildSSA(t, `
PROGRAM MAIN
  INTEGER A, B
  B = 0
  IF (B .GT. 0) THEN
    A = 5
  ELSE
    A = 6
  ENDIF
  CALL S(A)
END
SUBROUTINE S(X)
  INTEGER X
  X = X
  RETURN
END
`, noMod{})
	main := p.ProcByName["MAIN"]
	vn := Analyze(main, nil)
	call := findCall(t, main)
	if _, ok := vn.OperandExpr(call.Args[0]).(*sym.Unknown); !ok {
		t.Errorf("phi(5,6) should be unknown, got %v", vn.OperandExpr(call.Args[0]))
	}
}

func TestLoopCarriedIsUnknown(t *testing.T) {
	p := buildSSA(t, `
PROGRAM MAIN
  INTEGER I, S
  S = 0
  DO I = 1, 10
    S = S + 1
  ENDDO
  CALL SINK(S)
END
SUBROUTINE SINK(X)
  INTEGER X
  X = X
  RETURN
END
`, noMod{})
	main := p.ProcByName["MAIN"]
	vn := Analyze(main, nil)
	call := findCall(t, main)
	if sym.IsClosed(vn.OperandExpr(call.Args[0])) {
		t.Errorf("loop-carried S should be unknown, got %v", vn.OperandExpr(call.Args[0]))
	}
}

func TestWorstCaseCallKillsValues(t *testing.T) {
	src := `
PROGRAM MAIN
  COMMON /B/ G
  INTEGER G, N
  G = 3
  N = 4
  CALL NOP
  CALL SINK(G, N)
END
SUBROUTINE NOP
  RETURN
END
SUBROUTINE SINK(A, B)
  INTEGER A, B
  A = B
  RETURN
END
`
	// Worst case: the NOP call clobbers G (but N is a local not passed
	// by reference, so it survives).
	p := buildSSA(t, src, ir.WorstCase)
	main := p.ProcByName["MAIN"]
	vn := Analyze(main, nil)
	var sink *ir.Instr
	for _, b := range main.Blocks {
		for _, i := range b.Instrs {
			if i.Op == ir.OpCall && i.Callee.Name == "SINK" {
				sink = i
			}
		}
	}
	if sym.IsClosed(vn.OperandExpr(sink.Args[0])) {
		t.Errorf("worst case: G after call should be unknown, got %v", vn.OperandExpr(sink.Args[0]))
	}
	if c, ok := vn.OperandExpr(sink.Args[1]).(*sym.Const); !ok || c.Val != 4 {
		t.Errorf("local N should survive the call: %v", vn.OperandExpr(sink.Args[1]))
	}

	// No-mod oracle: G survives too.
	p2 := buildSSA(t, src, noMod{})
	main2 := p2.ProcByName["MAIN"]
	vn2 := Analyze(main2, nil)
	var sink2 *ir.Instr
	for _, b := range main2.Blocks {
		for _, i := range b.Instrs {
			if i.Op == ir.OpCall && i.Callee.Name == "SINK" {
				sink2 = i
			}
		}
	}
	if c, ok := vn2.OperandExpr(sink2.Args[0]).(*sym.Const); !ok || c.Val != 3 {
		t.Errorf("precise MOD: G should be 3 at the call, got %v", vn2.OperandExpr(sink2.Args[0]))
	}
}

// fixedReturnEval reports constant 99 for every call-modified binding.
type fixedReturnEval struct{}

func (fixedReturnEval) CallDefExpr(*ir.Instr, *ir.Value, func(int) sym.Expr) sym.Expr {
	return sym.NewConst(99)
}

func TestReturnEvalFeedsCallDefs(t *testing.T) {
	src := `
PROGRAM MAIN
  INTEGER X
  X = 1
  CALL SETTER(X)
  CALL SINK(X)
END
SUBROUTINE SETTER(A)
  INTEGER A
  A = 99
  RETURN
END
SUBROUTINE SINK(B)
  INTEGER B
  B = B
  RETURN
END
`
	p := buildSSA(t, src, ir.WorstCase)
	main := p.ProcByName["MAIN"]
	vn := Analyze(main, fixedReturnEval{})
	var sink *ir.Instr
	for _, b := range main.Blocks {
		for _, i := range b.Instrs {
			if i.Op == ir.OpCall && i.Callee.Name == "SINK" {
				sink = i
			}
		}
	}
	if c, ok := vn.OperandExpr(sink.Args[0]).(*sym.Const); !ok || c.Val != 99 {
		t.Errorf("return JF should make X=99 after SETTER: %v", vn.OperandExpr(sink.Args[0]))
	}
}

func TestRealValuesAreUnknown(t *testing.T) {
	p := buildSSA(t, `
PROGRAM MAIN
  REAL X
  X = 1.5
  CALL S(X)
END
SUBROUTINE S(A)
  REAL A
  A = A
  RETURN
END
`, noMod{})
	main := p.ProcByName["MAIN"]
	vn := Analyze(main, nil)
	call := findCall(t, main)
	if vn.OperandExpr(call.Args[0]) != nil && sym.IsClosed(vn.OperandExpr(call.Args[0])) {
		t.Errorf("real actual should be unknown: %v", vn.OperandExpr(call.Args[0]))
	}
}
