package valnum

import (
	"testing"

	"ipcp/internal/ir"
	"ipcp/internal/ir/irbuild"
	"ipcp/internal/mf/parser"
	"ipcp/internal/mf/sema"
	"ipcp/internal/pass"
)

// TestPassPublishesResults checks the pass-manager adapter: one run
// builds SSA (a program change), numbers every procedure, and publishes
// the map under FactResults; a second run is a pure analysis.
func TestPassPublishesResults(t *testing.T) {
	f, err := parser.Parse(`
PROGRAM MAIN
  INTEGER A, B
  A = 6
  B = A + 1
  CALL SHOW(B)
END

SUBROUTINE SHOW(N)
  INTEGER N
  WRITE(*,*) N
END
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := sema.Analyze(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	ctx := pass.NewContext(irbuild.Build(sp))

	vp := NewPass()
	changed, err := ctx.Exec(vp)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("first run builds SSA and must report a change")
	}
	v, ok := ctx.Fact(FactResults)
	if !ok {
		t.Fatal("FactResults not published")
	}
	results := v.(map[*ir.Proc]*Result)
	for _, proc := range ctx.Program().Procs {
		if results[proc] == nil {
			t.Fatalf("no numbering for %s", proc.Name)
		}
	}
	if results[ctx.Program().Main].Proc != ctx.Program().Main {
		t.Fatal("numbering attached to the wrong procedure")
	}

	if changed, err = ctx.Exec(vp); err != nil || changed {
		t.Fatalf("second run: changed=%v err=%v, want pure analysis", changed, err)
	}
}
