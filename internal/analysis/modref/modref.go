// Package modref computes flow-insensitive interprocedural MOD and REF
// summaries in the style of Cooper–Kennedy: for every procedure, which
// formal parameters and which globals a call to it may modify (MOD) or
// read (REF), including effects that flow through by-reference parameter
// bindings and through COMMON.
//
// The study's central Table 3 experiment toggles exactly this
// information: Summary.Oracle() feeds SSA construction when MOD is
// enabled; ir.WorstCase replaces it when MOD is disabled.
package modref

import (
	"ipcp/internal/analysis/callgraph"
	"ipcp/internal/ir"
)

// Summary holds MOD/REF information for every procedure of one program.
type Summary struct {
	prog *ir.Program

	modFormal map[*ir.Proc][]bool
	refFormal map[*ir.Proc][]bool
	modGlobal map[*ir.Proc]map[*ir.GlobalVar]bool
	refGlobal map[*ir.Proc]map[*ir.GlobalVar]bool
}

// ModFormal reports whether a call to p may modify p's idx-th formal.
func (s *Summary) ModFormal(p *ir.Proc, idx int) bool {
	m := s.modFormal[p]
	return idx < len(m) && m[idx]
}

// RefFormal reports whether a call to p may read p's idx-th formal.
func (s *Summary) RefFormal(p *ir.Proc, idx int) bool {
	m := s.refFormal[p]
	return idx < len(m) && m[idx]
}

// ModGlobal reports whether a call to p may modify the global g.
func (s *Summary) ModGlobal(p *ir.Proc, g *ir.GlobalVar) bool { return s.modGlobal[p][g] }

// RefGlobal reports whether a call to p may read the global g.
func (s *Summary) RefGlobal(p *ir.Proc, g *ir.GlobalVar) bool { return s.refGlobal[p][g] }

// Oracle adapts the summary to the ir.ModOracle interface used by SSA
// construction.
func (s *Summary) Oracle() ir.ModOracle { return oracle{s} }

type oracle struct{ s *Summary }

func (o oracle) ModifiesFormal(callee *ir.Proc, idx int) bool { return o.s.ModFormal(callee, idx) }
func (o oracle) ModifiesGlobal(callee *ir.Proc, g *ir.GlobalVar) bool {
	return o.s.ModGlobal(callee, g)
}

// Compute runs the analysis over the (pre-SSA or SSA) IR. It gathers
// direct effects from each procedure body, then iterates bindings over
// the call graph to a fixpoint; the call graph's reverse-topological SCC
// order makes one pass suffice for nonrecursive programs.
func Compute(p *ir.Program, g *callgraph.Graph) *Summary {
	s := &Summary{
		prog:      p,
		modFormal: make(map[*ir.Proc][]bool, len(p.Procs)),
		refFormal: make(map[*ir.Proc][]bool, len(p.Procs)),
		modGlobal: make(map[*ir.Proc]map[*ir.GlobalVar]bool, len(p.Procs)),
		refGlobal: make(map[*ir.Proc]map[*ir.GlobalVar]bool, len(p.Procs)),
	}
	for _, proc := range p.Procs {
		s.modFormal[proc] = make([]bool, len(proc.Formals))
		s.refFormal[proc] = make([]bool, len(proc.Formals))
		s.modGlobal[proc] = make(map[*ir.GlobalVar]bool)
		s.refGlobal[proc] = make(map[*ir.GlobalVar]bool)
		s.direct(proc)
	}

	// Propagate over the call graph: process SCCs bottom-up, iterating
	// within the whole graph until stable (recursion needs the loop).
	order := g.BottomUp()
	for changed := true; changed; {
		changed = false
		for _, n := range order {
			if s.propagateInto(n) {
				changed = true
			}
		}
	}
	return s
}

// markMod records that proc may modify v (a formal or global view).
func (s *Summary) markMod(proc *ir.Proc, v *ir.Var) bool {
	switch v.Kind {
	case ir.FormalVar:
		if !s.modFormal[proc][v.Index] {
			s.modFormal[proc][v.Index] = true
			return true
		}
	case ir.GlobalRefVar:
		if !s.modGlobal[proc][v.Global] {
			s.modGlobal[proc][v.Global] = true
			return true
		}
	}
	return false
}

func (s *Summary) markRef(proc *ir.Proc, v *ir.Var) bool {
	switch v.Kind {
	case ir.FormalVar:
		if !s.refFormal[proc][v.Index] {
			s.refFormal[proc][v.Index] = true
			return true
		}
	case ir.GlobalRefVar:
		if !s.refGlobal[proc][v.Global] {
			s.refGlobal[proc][v.Global] = true
			return true
		}
	}
	return false
}

// direct collects the effects a procedure has through its own
// instructions (no call propagation yet).
func (s *Summary) direct(proc *ir.Proc) {
	for _, b := range proc.Blocks {
		for _, i := range b.Instrs {
			// Definitions.
			switch {
			case i.Op.DefinesScalar() && i.Var != nil:
				s.markMod(proc, i.Var)
			case i.Op == ir.OpAStore:
				s.markMod(proc, i.Var) // array formal or global array view
			case i.Op == ir.OpRead && i.Var != nil:
				s.markMod(proc, i.Var)
			}
			// Uses: every non-synthetic variable operand is a direct
			// read. (Synthetic operands — the implicit global uses on
			// calls and the Ret escape list — are modeled structurally,
			// not as source-level reads.)
			for a := range i.Args {
				op := &i.Args[a]
				if op.Var == nil || op.Synthetic {
					continue
				}
				if i.Op == ir.OpCall && a < i.NumActuals && bareByRef(i, a) {
					// A bare by-reference actual is not itself a read;
					// the callee's REF of that formal propagates it.
					continue
				}
				s.markRef(proc, op.Var)
			}
		}
	}
}

// bareByRef reports whether actual a of the call is a bare variable
// (including arrays), i.e. a by-reference binding rather than a value.
func bareByRef(call *ir.Instr, a int) bool {
	op := call.Args[a]
	return op.Const == nil && op.Var != nil && op.Var.Kind != ir.TempVar
}

// propagateInto folds callee summaries into n's procedure; it reports
// whether anything changed.
func (s *Summary) propagateInto(n *callgraph.Node) bool {
	proc := n.Proc
	changed := false
	for _, call := range n.Sites {
		callee := call.Callee
		// Parameter bindings.
		for a := 0; a < call.NumActuals && a < len(callee.Formals); a++ {
			if !bareByRef(call, a) {
				continue
			}
			v := call.Args[a].Var
			if s.ModFormal(callee, a) && s.markMod(proc, v) {
				changed = true
			}
			if s.RefFormal(callee, a) && s.markRef(proc, v) {
				changed = true
			}
		}
		// Globals flow straight through.
		for g := range s.modGlobal[callee] {
			if !s.modGlobal[proc][g] {
				s.modGlobal[proc][g] = true
				changed = true
			}
		}
		for g := range s.refGlobal[callee] {
			if !s.refGlobal[proc][g] {
				s.refGlobal[proc][g] = true
				changed = true
			}
		}
	}
	return changed
}
