package modref

import (
	"testing"

	"ipcp/internal/analysis/callgraph"
	"ipcp/internal/ir"
	"ipcp/internal/ir/irbuild"
	"ipcp/internal/mf/parser"
	"ipcp/internal/mf/sema"
)

func compute(t *testing.T, src string) (*ir.Program, *Summary) {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := sema.Analyze(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	p := irbuild.Build(sp)
	g := callgraph.Build(p)
	return p, Compute(p, g)
}

func TestDirectMod(t *testing.T) {
	p, s := compute(t, `
PROGRAM MAIN
  CALL S(1, 2)
END
SUBROUTINE S(A, B)
  INTEGER A, B, L
  A = B + 1
  L = B
  RETURN
END
`)
	sp := p.ProcByName["S"]
	if !s.ModFormal(sp, 0) {
		t.Error("A is assigned: MOD")
	}
	if s.ModFormal(sp, 1) {
		t.Error("B is only read: not MOD")
	}
	if !s.RefFormal(sp, 1) {
		t.Error("B is read: REF")
	}
	if s.RefFormal(sp, 0) {
		t.Error("A is only written: not REF")
	}
}

func TestModThroughBindingChain(t *testing.T) {
	p, s := compute(t, `
PROGRAM MAIN
  INTEGER X
  CALL OUTER(X)
END
SUBROUTINE OUTER(P)
  INTEGER P
  CALL INNER(P)
  RETURN
END
SUBROUTINE INNER(Q)
  INTEGER Q
  Q = 5
  RETURN
END
`)
	outer := p.ProcByName["OUTER"]
	if !s.ModFormal(outer, 0) {
		t.Error("OUTER's P is modified through INNER")
	}
	if s.RefFormal(outer, 0) {
		t.Error("P is never read")
	}
}

func TestGlobalEffectsPropagate(t *testing.T) {
	p, s := compute(t, `
PROGRAM MAIN
  COMMON /BLK/ G1, G2
  INTEGER G1, G2
  CALL TOP
END
SUBROUTINE TOP
  CALL WRITER
  CALL READER
  RETURN
END
SUBROUTINE WRITER
  COMMON /BLK/ GA, GB
  INTEGER GA, GB
  GA = 1
  RETURN
END
SUBROUTINE READER
  COMMON /BLK/ GA, GB
  INTEGER GA, GB, L
  L = GB
  RETURN
END
`)
	top := p.ProcByName["TOP"]
	g1, g2 := p.Globals[0], p.Globals[1]
	if !s.ModGlobal(top, g1) {
		t.Error("TOP modifies G1 via WRITER")
	}
	if s.ModGlobal(top, g2) {
		t.Error("nothing modifies G2")
	}
	if !s.RefGlobal(top, g2) {
		t.Error("TOP reads G2 via READER")
	}
	if s.RefGlobal(top, g1) {
		t.Error("nothing reads G1")
	}
}

func TestRecursiveMod(t *testing.T) {
	p, s := compute(t, `
PROGRAM MAIN
  INTEGER X
  CALL A(X, 3)
END
SUBROUTINE A(P, N)
  INTEGER P, N
  IF (N .GT. 0) THEN
    CALL B(P, N-1)
  ENDIF
  RETURN
END
SUBROUTINE B(P, N)
  INTEGER P, N
  P = P + 1
  IF (N .GT. 0) THEN
    CALL A(P, N-1)
  ENDIF
  RETURN
END
`)
	a := p.ProcByName["A"]
	b := p.ProcByName["B"]
	if !s.ModFormal(a, 0) || !s.ModFormal(b, 0) {
		t.Error("P is modified through the A↔B cycle")
	}
	// N is read in both but modified in neither (N-1 passes a temp).
	if s.ModFormal(a, 1) || s.ModFormal(b, 1) {
		t.Error("N is never modified (expression actuals are temps)")
	}
	if !s.RefFormal(a, 1) || !s.RefFormal(b, 1) {
		t.Error("N is read")
	}
}

func TestArrayFormalsAndReads(t *testing.T) {
	p, s := compute(t, `
PROGRAM MAIN
  INTEGER BUF(10), X
  CALL FILL(BUF, X)
END
SUBROUTINE FILL(A, N)
  INTEGER A(10), N
  A(1) = 7
  N = A(2)
  RETURN
END
`)
	fill := p.ProcByName["FILL"]
	if !s.ModFormal(fill, 0) {
		t.Error("array formal A is stored to: MOD")
	}
	if !s.RefFormal(fill, 0) {
		t.Error("array formal A is loaded from: REF")
	}
	if !s.ModFormal(fill, 1) {
		t.Error("N assigned")
	}
}

func TestReadStatementIsMod(t *testing.T) {
	p, s := compute(t, `
PROGRAM MAIN
  INTEGER X
  CALL GET(X)
END
SUBROUTINE GET(V)
  INTEGER V
  READ V
  RETURN
END
`)
	get := p.ProcByName["GET"]
	if !s.ModFormal(get, 0) {
		t.Error("READ modifies its target")
	}
}

func TestOracleMatchesSummary(t *testing.T) {
	p, s := compute(t, `
PROGRAM MAIN
  COMMON /B/ G
  INTEGER G, X
  CALL S(X, 1)
END
SUBROUTINE S(A, B)
  INTEGER A, B
  COMMON /B/ G
  INTEGER G
  A = 1
  G = 2
  RETURN
END
`)
	o := s.Oracle()
	sp := p.ProcByName["S"]
	if !o.ModifiesFormal(sp, 0) || o.ModifiesFormal(sp, 1) {
		t.Error("oracle formal answers wrong")
	}
	if !o.ModifiesGlobal(sp, p.Globals[0]) {
		t.Error("oracle global answer wrong")
	}
}
