package inline

import (
	"ipcp/internal/pass"
)

// Pass is procedure integration as a pass-manager transform: it
// replaces the Context's program with the inlined version when any
// call site was expanded (or any unreachable procedure dropped), and
// leaves the program untouched otherwise.
type Pass struct {
	opts  *Options
	stats Stats
}

// NewPass builds the inlining pass (nil opts means defaults).
func NewPass(opts *Options) *Pass { return &Pass{opts: opts} }

func (p *Pass) Name() string          { return "inline" }
func (p *Pass) Requires() []pass.Fact { return nil }

// Invalidates is All: inlining rewrites call structure, so every
// cached analysis fact about the old program is stale.
func (p *Pass) Invalidates() []pass.Fact { return []pass.Fact{pass.All} }

func (p *Pass) Run(ctx *pass.Context) (bool, error) {
	np, stats := Program(ctx.Program(), p.opts)
	p.stats = stats
	if stats.Inlined == 0 && stats.Dropped == 0 {
		// Program always returns a private clone; discard it so the
		// program identity (and every cached fact) survives a no-op.
		return false, nil
	}
	ctx.SetProgram(np)
	return true, nil
}

// Stats reports what the last Run did.
func (p *Pass) Stats() Stats { return p.stats }
