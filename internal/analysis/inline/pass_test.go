package inline

import (
	"testing"

	"ipcp/internal/ir"
	"ipcp/internal/ir/irbuild"
	"ipcp/internal/mf/parser"
	"ipcp/internal/mf/sema"
	"ipcp/internal/pass"
)

func buildProg(t *testing.T, src string) *ir.Program {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := sema.Analyze(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	return irbuild.Build(sp)
}

// TestPassReplacesProgram checks the transform side of the adapter:
// an inlinable call swaps in a fresh program and drops cached facts.
func TestPassReplacesProgram(t *testing.T) {
	prog := buildProg(t, `
PROGRAM MAIN
  INTEGER I
  I = 4
  CALL BUMP(I)
  WRITE(*,*) I
END

SUBROUTINE BUMP(N)
  INTEGER N
  N = N + 1
END
`)
	ctx := pass.NewContext(prog)
	ctx.Debug = true
	ctx.SetFact("stale", 1)
	ip := NewPass(nil)
	changed, err := ctx.Exec(ip)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("inlinable call reported no change")
	}
	if ctx.Program() == prog {
		t.Fatal("program identity unchanged after inlining")
	}
	if st := ip.Stats(); st.Inlined == 0 {
		t.Fatalf("stats = %+v, want an inlined site", st)
	}
	if _, ok := ctx.Fact("stale"); ok {
		t.Fatal("cached fact survived an Invalidates(All) transform")
	}
}

// TestPassNoOpKeepsIdentity checks the other side: with nothing to
// inline the adapter discards the private clone so program identity —
// and every cached fact — survives.
func TestPassNoOpKeepsIdentity(t *testing.T) {
	prog := buildProg(t, `
PROGRAM MAIN
  INTEGER I
  I = 4
  WRITE(*,*) I
END
`)
	ctx := pass.NewContext(prog)
	ctx.SetFact("keep", 1)
	changed, err := ctx.Exec(NewPass(nil))
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("no-op inlining reported a change")
	}
	if ctx.Program() != prog {
		t.Fatal("no-op inlining replaced the program")
	}
	if _, ok := ctx.Fact("keep"); !ok {
		t.Fatal("no-op inlining dropped a cached fact")
	}
}
