package inline

import (
	"os"
	"path/filepath"
	"testing"

	"ipcp/internal/core"
	"ipcp/internal/core/jump"
	"ipcp/internal/interp"
	"ipcp/internal/ir"
	"ipcp/internal/ir/irbuild"
	"ipcp/internal/mf/parser"
	"ipcp/internal/mf/sema"
	"ipcp/internal/suite"
)

func build(t *testing.T, src string) (*sema.Program, *ir.Program) {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := sema.Analyze(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	return sp, irbuild.Build(sp)
}

func TestInlineBasic(t *testing.T) {
	_, prog := build(t, `
PROGRAM MAIN
  INTEGER X
  X = 1
  CALL BUMP(X)
  WRITE(*,*) X
END
SUBROUTINE BUMP(V)
  INTEGER V
  V = V + 41
  RETURN
END
`)
	np, stats := Program(prog, nil)
	if stats.Inlined != 1 || stats.Dropped != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	if len(np.Procs) != 1 {
		t.Fatalf("procs: %d", len(np.Procs))
	}
	if err := ir.VerifyProgram(np); err != nil {
		t.Fatal(err)
	}
	// By-reference semantics survive: the inlined body writes X.
	res := interp.Run(np, interp.Options{})
	if res.Err != nil || len(res.Output) != 1 || res.Output[0] != 42 {
		t.Fatalf("inlined execution: %v %v", res.Err, res.Output)
	}
}

func TestInlineSkipsRecursion(t *testing.T) {
	_, prog := build(t, `
PROGRAM MAIN
  INTEGER R
  R = FACT(5)
  WRITE(*,*) R
END
INTEGER FUNCTION FACT(N)
  INTEGER N
  IF (N .LE. 1) THEN
    FACT = 1
  ELSE
    FACT = N * FACT(N-1)
  ENDIF
  RETURN
END
`)
	np, _ := Program(prog, nil)
	if np.ProcByName["FACT"] == nil {
		t.Fatal("recursive FACT must survive")
	}
	res := interp.Run(np, interp.Options{})
	if res.Err != nil || res.Output[0] != 120 {
		t.Fatalf("execution: %v %v", res.Err, res.Output)
	}
}

func TestInlineRespectsBudget(t *testing.T) {
	_, prog := build(t, `
PROGRAM MAIN
  CALL S(1)
END
SUBROUTINE S(N)
  INTEGER N, A, B, C, D
  A = N
  B = A + 1
  C = B + 2
  D = C + 3
  RETURN
END
`)
	np, stats := Program(prog, &Options{MaxCalleeSize: 2})
	if stats.Inlined != 0 {
		t.Fatalf("budget ignored: %+v", stats)
	}
	if np.ProcByName["S"] == nil {
		t.Fatal("S dropped despite not being inlined")
	}
}

// The decisive test: inlining must preserve behavior exactly, over the
// corpus, the benchmark suite, and random programs.
func TestInlinePreservesBehavior(t *testing.T) {
	sources := map[string]string{}
	for _, name := range suite.Names() {
		sources[name] = suite.Generate(name, 1).Source
	}
	for seed := int64(1); seed <= 15; seed++ {
		p := suite.Random(seed, 5)
		sources[p.Name] = p.Source
	}
	corpus, _ := filepath.Glob(filepath.Join("..", "..", "..", "testdata", "*.f"))
	for _, path := range corpus {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		sources[filepath.Base(path)] = string(data)
	}
	if len(sources) < 25 {
		t.Fatalf("only %d sources", len(sources))
	}

	for name, src := range sources {
		sp, prog := build(t, src)
		_ = sp
		np, stats := Program(prog, nil)
		if err := ir.VerifyProgram(np); err != nil {
			t.Fatalf("%s: inlined program invalid: %v", name, err)
		}
		for seed := int64(0); seed < 2; seed++ {
			opts := interp.Options{InputSeed: seed, Fuel: 100_000_000}
			a := interp.Run(irbuild.Build(sp), opts)
			b := interp.Run(np, opts)
			if (a.Err == nil) != (b.Err == nil) {
				t.Fatalf("%s: fault behavior diverged: %v vs %v", name, a.Err, b.Err)
			}
			if len(a.Output) != len(b.Output) {
				t.Fatalf("%s seed %d (%d inlines): output length %d vs %d",
					name, seed, stats.Inlined, len(a.Output), len(b.Output))
			}
			for i := range a.Output {
				if a.Output[i] != b.Output[i] {
					t.Fatalf("%s seed %d: output[%d] = %d vs %d",
						name, seed, i, a.Output[i], b.Output[i])
				}
			}
		}
	}
}

// The §5 experiment: procedure integration + intraprocedural
// propagation (Wegman–Zadeck) versus the jump-function framework.
// Integration must find at least as many constants as the framework's
// strictly-intraprocedural baseline, and on call-structured programs it
// should rival the interprocedural counts.
func TestIntegrationBaselineExperiment(t *testing.T) {
	for _, name := range []string{"doduc", "matrix300", "ocean", "trfd"} {
		src := suite.Generate(name, 2).Source
		sp, prog := build(t, src)

		ipcpCount := core.Analyze(sp, core.Config{Jump: jump.Polynomial, ReturnJFs: true, MOD: true}).TotalSubstituted
		intraCount := core.AnalyzeIntraprocedural(sp).TotalSubstituted

		inlined, stats := Program(prog, nil)
		wzCount := core.AnalyzeIntraproceduralIR(inlined).TotalSubstituted

		if stats.Inlined == 0 {
			t.Errorf("%s: nothing inlined", name)
		}
		if wzCount < intraCount {
			t.Errorf("%s: integration (%d) found fewer than plain intraprocedural (%d)",
				name, wzCount, intraCount)
		}
		t.Logf("%s: ipcp=%d integration+intra=%d plain-intra=%d (inlined %d sites)",
			name, ipcpCount, wzCount, intraCount, stats.Inlined)
	}
}
