// Package inline implements procedure integration (inlining) at the IR
// level, preserving FORTRAN by-reference semantics by variable
// substitution.
//
// The paper's §5 discusses Wegman & Zadeck's proposal to find
// interprocedural constants by combining procedure integration with
// intraprocedural constant propagation: making call paths explicit can
// find *more* constants than the jump-function framework (which merges
// all paths into one CONSTANTS set), but "data is not yet available to
// indicate whether or not the proposed algorithm would perform
// efficiently in practice". This package supplies the mechanism; the
// integration-baseline experiment (cmd/tables -integration and the
// tests in this package) supplies the data.
//
// Correctness is validated differentially: an inlined program must
// produce bit-identical output to the original under the interpreter.
package inline

import (
	"fmt"

	"ipcp/internal/analysis/callgraph"
	"ipcp/internal/ir"
)

// Options bounds the transformation.
type Options struct {
	// MaxCalleeSize caps the instruction count of an inlinable callee
	// (default 2000).
	MaxCalleeSize int

	// MaxCallerSize stops growing a caller past this many instructions
	// (default 50000).
	MaxCallerSize int

	// MaxPasses bounds the inline-until-fixpoint iteration (default 10).
	MaxPasses int
}

func (o *Options) fill() {
	if o.MaxCalleeSize == 0 {
		o.MaxCalleeSize = 2000
	}
	if o.MaxCallerSize == 0 {
		o.MaxCallerSize = 50000
	}
	if o.MaxPasses == 0 {
		o.MaxPasses = 10
	}
}

// Stats reports what Program did.
type Stats struct {
	Inlined int // call sites expanded
	Passes  int // passes until fixpoint
	Dropped int // procedures that became unreachable and were removed
}

// Program returns a fresh program with every inlinable call expanded:
// non-recursive callees within the size budgets. Procedures that become
// unreachable from the main program are dropped.
func Program(prog *ir.Program, opts *Options) (*ir.Program, Stats) {
	if opts == nil {
		opts = &Options{}
	}
	opts.fill()

	// Work on a private pre-SSA copy.
	np := ir.CloneProgram(prog, nil, nil)
	var stats Stats

	for pass := 0; pass < opts.MaxPasses; pass++ {
		cg := callgraph.Build(np)
		recursive := make(map[*ir.Proc]bool)
		for _, n := range cg.TopDown() {
			if cg.InCycle(n) {
				recursive[n.Proc] = true
			}
		}
		changed := false
		for _, proc := range np.Procs {
			if expandCalls(proc, recursive, opts, &stats) {
				changed = true
			}
		}
		stats.Passes = pass + 1
		if !changed {
			break
		}
	}

	// Drop procedures that are no longer reachable from main.
	cg := callgraph.Build(np)
	reach := cg.ReachableFromMain()
	var kept []*ir.Proc
	for _, proc := range np.Procs {
		if reach[proc] || proc.Kind == ir.MainProc {
			kept = append(kept, proc)
		} else {
			stats.Dropped++
			delete(np.ProcByName, proc.Name)
		}
	}
	np.Procs = kept
	return np, stats
}

func procSize(p *ir.Proc) int {
	n := 0
	for _, b := range p.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// expandCalls inlines every eligible call in proc (one level; the
// pass loop reaches transitive depth). It reports whether anything
// changed.
func expandCalls(proc *ir.Proc, recursive map[*ir.Proc]bool, opts *Options, stats *Stats) bool {
	changed := false
	for bi := 0; bi < len(proc.Blocks); bi++ {
		b := proc.Blocks[bi]
		for k := 0; k < len(b.Instrs); k++ {
			call := b.Instrs[k]
			if call.Op != ir.OpCall {
				continue
			}
			callee := call.Callee
			if callee == proc || recursive[callee] {
				continue
			}
			if procSize(callee) > opts.MaxCalleeSize || procSize(proc) > opts.MaxCallerSize {
				continue
			}
			splice(proc, b, k, call)
			stats.Inlined++
			changed = true
			// The block was split at the call; continue scanning from
			// the next block (the clone and continuation follow).
			break
		}
	}
	return changed
}

// splice expands one call: the containing block is split, the callee's
// body is cloned in with variables substituted, and the callee's
// returns become jumps to the continuation.
func splice(caller *ir.Proc, b *ir.Block, k int, call *ir.Instr) {
	callee := call.Callee

	// Continuation block: everything after the call.
	cont := caller.NewBlock()
	cont.Instrs = append(cont.Instrs, b.Instrs[k+1:]...)
	for _, i := range cont.Instrs {
		i.Block = cont
	}
	cont.Succs = b.Succs
	for _, s := range cont.Succs {
		for pi, pr := range s.Preds {
			if pr == b {
				s.Preds[pi] = cont
			}
		}
	}
	b.Instrs = b.Instrs[:k]
	b.Succs = nil

	// Variable substitution.
	varMap := make(map[*ir.Var]*ir.Var, len(callee.Vars))
	fresh := func(v *ir.Var) *ir.Var {
		nv := caller.NewVar(fmt.Sprintf("%s.%s", callee.Name, v.Name), v.Kind, v.Type)
		if nv.Kind == ir.FormalVar || nv.Kind == ir.ResultVar {
			nv.Kind = ir.LocalVar // an inlined formal is just a local now
		}
		nv.Size = v.Size
		nv.Dims = v.Dims
		return nv
	}
	// Formals bind to the actuals.
	for i, f := range callee.Formals {
		var actual ir.Operand
		if i < call.NumActuals {
			actual = call.Args[i]
		}
		switch {
		case actual.Var != nil && f.Type.IsArray() == actual.Var.Type.IsArray():
			// Bare variable (scalar or array): true by-reference
			// aliasing — substitute the actual for the formal.
			varMap[f] = actual.Var
		default:
			// Constant or expression value: bind a fresh local,
			// initialized before entry (writes to it are unobservable,
			// exactly as writes through a temporary reference are).
			nv := fresh(f)
			varMap[f] = nv
			init := &ir.Instr{Op: ir.OpCopy, Var: nv, Args: []ir.Operand{actual}, Pos: call.Pos}
			b.Append(init)
		}
	}
	// The function result writes the call's destination temp directly.
	if callee.Result != nil {
		if call.Var != nil {
			varMap[callee.Result] = call.Var
		} else {
			varMap[callee.Result] = fresh(callee.Result)
		}
	}
	// Global views map positionally.
	for gi, gv := range callee.GlobalVars {
		varMap[gv] = caller.GlobalVars[gi]
	}
	mapVar := func(v *ir.Var) *ir.Var {
		if v == nil {
			return nil
		}
		if nv, ok := varMap[v]; ok {
			return nv
		}
		nv := fresh(v)
		varMap[v] = nv
		return nv
	}

	// Clone the body.
	blockMap := make(map[*ir.Block]*ir.Block, len(callee.Blocks))
	for _, cb := range callee.Blocks {
		blockMap[cb] = caller.NewBlock()
	}
	for _, cb := range callee.Blocks {
		nb := blockMap[cb]
		for _, s := range cb.Succs {
			ir.AddEdge(nb, blockMap[s])
		}
		for _, i := range cb.Instrs {
			if i.Op == ir.OpRet {
				nb.Append(&ir.Instr{Op: ir.OpJmp, Pos: i.Pos})
				ir.AddEdge(nb, cont)
				continue
			}
			ni := &ir.Instr{
				Op:         i.Op,
				Pos:        i.Pos,
				Role:       i.Role,
				Var:        mapVar(i.Var),
				Callee:     i.Callee,
				NumActuals: i.NumActuals,
			}
			ni.Args = make([]ir.Operand, len(i.Args))
			for a := range i.Args {
				op := i.Args[a]
				op.Var = mapVar(op.Var)
				ni.Args[a] = op
			}
			nb.Append(ni)
		}
	}

	// Enter the inlined body.
	b.Append(&ir.Instr{Op: ir.OpJmp, Pos: call.Pos})
	ir.AddEdge(b, blockMap[callee.Entry])
	caller.RemoveUnreachable()
}
