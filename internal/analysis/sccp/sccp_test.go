package sccp

import (
	"testing"

	"ipcp/internal/core/lattice"
	"ipcp/internal/ir"
	"ipcp/internal/ir/irbuild"
	"ipcp/internal/mf/parser"
	"ipcp/internal/mf/sema"
)

func buildSSA(t *testing.T, src string) *ir.Program {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := sema.Analyze(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	p := irbuild.Build(sp)
	for _, proc := range p.Procs {
		proc.BuildSSA(ir.WorstCase)
	}
	return p
}

// valueOfVarDef returns the SCCP value of the last definition of the
// named variable that appears in the procedure (program order).
func valueOfVarDef(res *Result, name string) lattice.Value {
	var last *ir.Value
	for _, b := range res.Proc.Blocks {
		for _, i := range b.Instrs {
			if i.Dst != nil && i.Var != nil && i.Var.Name == name {
				last = i.Dst
			}
		}
	}
	return res.ValueOf(last)
}

func TestStraightLineFolding(t *testing.T) {
	p := buildSSA(t, `
PROGRAM MAIN
  INTEGER A, B, C
  A = 2
  B = A*3
  C = B - A + MOD(7, 4)
END
`)
	res := Run(p.Main, nil, nil)
	if v := valueOfVarDef(res, "C"); !v.Equal(lattice.OfInt(7)) {
		t.Fatalf("C = %v, want 7", v)
	}
}

func TestBranchPruning(t *testing.T) {
	p := buildSSA(t, `
PROGRAM MAIN
  INTEGER A, B
  A = 1
  IF (A .GT. 0) THEN
    B = 10
  ELSE
    B = 20
  ENDIF
  A = B
END
`)
	res := Run(p.Main, nil, nil)
	// The else arm is unreachable, so B is the constant 10 at the join.
	if v := valueOfVarDef(res, "A"); !v.Equal(lattice.OfInt(10)) {
		t.Fatalf("A = %v, want 10 (dead arm should be pruned)", v)
	}
	unreachable := 0
	for _, b := range p.Main.Blocks {
		if !res.Reachable[b] {
			unreachable++
		}
	}
	if unreachable == 0 {
		t.Fatal("expected an unreachable block")
	}
}

func TestMergeLosesDistinctConstants(t *testing.T) {
	p := buildSSA(t, `
PROGRAM MAIN
  INTEGER A, B
  READ A
  IF (A .GT. 0) THEN
    B = 10
  ELSE
    B = 20
  ENDIF
  A = B
END
`)
	res := Run(p.Main, nil, nil)
	if v := valueOfVarDef(res, "A"); !v.IsBottom() {
		t.Fatalf("A = %v, want bottom (both arms live)", v)
	}
}

func TestLoopConstancy(t *testing.T) {
	// K stays 5 through the loop; the loop-carried S does not.
	p := buildSSA(t, `
PROGRAM MAIN
  INTEGER I, S, K, W
  K = 5
  S = 0
  DO I = 1, 10
    S = S + K
  ENDDO
  W = K
END
`)
	res := Run(p.Main, nil, nil)
	if v := valueOfVarDef(res, "W"); !v.Equal(lattice.OfInt(5)) {
		t.Fatalf("W = %v, want 5", v)
	}
	if v := valueOfVarDef(res, "S"); !v.IsBottom() {
		t.Fatalf("S = %v, want bottom", v)
	}
}

func TestSeededEntryValues(t *testing.T) {
	p := buildSSA(t, `
PROGRAM MAIN
  CALL S(1)
END
SUBROUTINE S(N)
  INTEGER N, A
  A = N + 1
  RETURN
END
`)
	s := p.ProcByName["S"]
	// Without seed: N is bottom.
	res := Run(s, nil, nil)
	if v := valueOfVarDef(res, "A"); !v.IsBottom() {
		t.Fatalf("unseeded A = %v", v)
	}
	// Seed N = 41 (as the interprocedural propagation would).
	seed := map[*ir.Value]lattice.Value{}
	for v, val := range s.EntryValues {
		if v.Kind == ir.FormalVar && v.Index == 0 {
			seed[val] = lattice.OfInt(41)
		}
	}
	res2 := Run(s, seed, nil)
	if v := valueOfVarDef(res2, "A"); !v.Equal(lattice.OfInt(42)) {
		t.Fatalf("seeded A = %v, want 42", v)
	}
}

func TestSeededBranchUnreachable(t *testing.T) {
	p := buildSSA(t, `
PROGRAM MAIN
  CALL S(0)
END
SUBROUTINE S(DBG)
  INTEGER DBG, X
  X = 1
  IF (DBG .NE. 0) THEN
    X = 2
  ENDIF
  X = X
  RETURN
END
`)
	s := p.ProcByName["S"]
	seed := map[*ir.Value]lattice.Value{}
	for v, val := range s.EntryValues {
		if v.Kind == ir.FormalVar {
			seed[val] = lattice.OfInt(0)
		}
	}
	res := Run(s, seed, nil)
	// The debug arm is unreachable and X is 1 at the end.
	if v := valueOfVarDef(res, "X"); !v.Equal(lattice.OfInt(1)) {
		t.Fatalf("X = %v, want 1", v)
	}
}

func TestCallDefsAreBottomByDefault(t *testing.T) {
	p := buildSSA(t, `
PROGRAM MAIN
  INTEGER X, Y
  X = 1
  CALL TOUCH(X)
  Y = X
END
SUBROUTINE TOUCH(A)
  INTEGER A
  A = 2
  RETURN
END
`)
	res := Run(p.Main, nil, nil)
	if v := valueOfVarDef(res, "Y"); !v.IsBottom() {
		t.Fatalf("Y = %v, want bottom (call kills X)", v)
	}
}

func TestCallDefEvalHook(t *testing.T) {
	p := buildSSA(t, `
PROGRAM MAIN
  INTEGER X, Y
  X = 1
  CALL TOUCH(X)
  Y = X
END
SUBROUTINE TOUCH(A)
  INTEGER A
  A = 2
  RETURN
END
`)
	cde := func(call *ir.Instr, def *ir.Value, argVal func(int) lattice.Value) lattice.Value {
		return lattice.OfInt(2) // pretend a return jump function knows
	}
	res := Run(p.Main, nil, cde)
	if v := valueOfVarDef(res, "Y"); !v.Equal(lattice.OfInt(2)) {
		t.Fatalf("Y = %v, want 2", v)
	}
}

func TestLogicalShortCircuitPrecision(t *testing.T) {
	p := buildSSA(t, `
PROGRAM MAIN
  INTEGER A, B
  LOGICAL L
  READ A
  L = (A .GT. 0) .AND. .FALSE.
  IF (L) THEN
    B = 1
  ELSE
    B = 2
  ENDIF
  A = B
END
`)
	res := Run(p.Main, nil, nil)
	if v := valueOfVarDef(res, "A"); !v.Equal(lattice.OfInt(2)) {
		t.Fatalf("A = %v, want 2 (AND with constant false)", v)
	}
}

func TestRealsAreBottom(t *testing.T) {
	p := buildSSA(t, `
PROGRAM MAIN
  REAL X, Y
  X = 1.5
  Y = X * 2.0
END
`)
	res := Run(p.Main, nil, nil)
	if v := valueOfVarDef(res, "Y"); !v.IsBottom() {
		t.Fatalf("Y = %v, want bottom (reals untracked)", v)
	}
}

func TestDivisionByZeroIsBottom(t *testing.T) {
	p := buildSSA(t, `
PROGRAM MAIN
  INTEGER A, B
  A = 0
  B = 7/A
END
`)
	res := Run(p.Main, nil, nil)
	if v := valueOfVarDef(res, "B"); !v.IsBottom() {
		t.Fatalf("B = %v, want bottom", v)
	}
}

func TestGotoLoopTermination(t *testing.T) {
	// An explicit GOTO loop with a read-controlled exit must converge.
	p := buildSSA(t, `
PROGRAM MAIN
  INTEGER A, B
  A = 0
10 A = A + 1
  READ B
  IF (B .GT. 0) GOTO 10
  B = A
END
`)
	res := Run(p.Main, nil, nil)
	if v := valueOfVarDef(res, "B"); !v.IsBottom() {
		t.Fatalf("B = %v, want bottom (loop-carried)", v)
	}
}

func TestBranchDecision(t *testing.T) {
	p := buildSSA(t, `
PROGRAM MAIN
  INTEGER A, B
  A = 1
  IF (A .LT. 0) THEN
    B = 1
  ELSE
    B = 2
  ENDIF
  A = B
END
`)
	res := Run(p.Main, nil, nil)
	found := false
	for _, b := range p.Main.Blocks {
		if t2 := b.Terminator(); t2 != nil && t2.Op == ir.OpBr {
			taken, ok := res.BranchDecision(t2)
			if !ok {
				t.Fatal("branch should fold")
			}
			if taken != 1 {
				t.Fatalf("taken = %d, want 1 (false arm)", taken)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no branch found")
	}
}
