package sccp

import (
	"ipcp/internal/ir"
	"ipcp/internal/pass"
)

// FactResults is the pass-manager fact under which per-procedure SCCP
// results (map[*ir.Proc]*Result) are published.
const FactResults pass.Fact = "sccp"

// Pass runs unseeded SCCP over every procedure and publishes the
// results as FactResults. It builds SSA first where missing (using the
// Context's mod/ref oracle), which is the only way it changes the
// program.
type Pass struct {
	results map[*ir.Proc]*Result
}

// NewPass builds the whole-program SCCP analysis pass.
func NewPass() *Pass { return &Pass{} }

func (p *Pass) Name() string             { return "sccp" }
func (p *Pass) Requires() []pass.Fact    { return nil }
func (p *Pass) Invalidates() []pass.Fact { return nil }

func (p *Pass) Run(ctx *pass.Context) (bool, error) {
	changed := pass.EnsureSSA(ctx)
	prog := ctx.Program()
	p.results = make(map[*ir.Proc]*Result, len(prog.Procs))
	for _, proc := range prog.Procs {
		p.results[proc] = Run(proc, nil, nil)
	}
	ctx.SetFact(FactResults, p.results)
	return changed, nil
}

// Results returns the per-procedure outcomes of the last Run.
func (p *Pass) Results() map[*ir.Proc]*Result { return p.results }
