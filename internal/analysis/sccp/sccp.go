// Package sccp implements Wegman–Zadeck sparse conditional constant
// propagation over a procedure in SSA form.
//
// Three clients use it:
//
//   - the Table 3 "intraprocedural propagation" baseline (no seeding:
//     every entry value is ⊥, call effects per the MOD-based SSA);
//   - dead-code elimination for the paper's "complete propagation"
//     (seeded with the CONSTANTS(p) sets, so branches controlled by
//     interprocedural constants fold and their arms become unreachable);
//   - sanity checks in tests.
//
// Integer and logical constants are tracked; REAL values are ⊥
// throughout (the paper propagates integer constants only, and logical
// constants exist so branches can be decided).
package sccp

import (
	"ipcp/internal/core/lattice"
	"ipcp/internal/ir"
	"ipcp/internal/sym"
)

// CallDefEval lets a caller supply return-jump-function knowledge for
// values redefined by calls (including function results). argVal yields
// the lattice value of the call's i-th argument. Return lattice.Bottom
// when nothing is known.
type CallDefEval func(call *ir.Instr, def *ir.Value, argVal func(int) lattice.Value) lattice.Value

// Result is the analysis outcome for one procedure.
type Result struct {
	Proc *ir.Proc

	// Val maps every SSA value to its final lattice element. Values in
	// unreachable code keep ⊤.
	Val map[*ir.Value]lattice.Value

	// Reachable marks the blocks executable from the entry under
	// constant-branch pruning.
	Reachable map[*ir.Block]bool

	// edgeExec marks executable CFG edges as (from, predIndex-in-to).
	edgeExec map[edge]bool
}

type edge struct {
	to      *ir.Block
	predIdx int
}

// EdgeExecutable reports whether the CFG edge into `to` from its
// predIdx-th predecessor was found executable.
func (r *Result) EdgeExecutable(to *ir.Block, predIdx int) bool {
	return r.edgeExec[edge{to, predIdx}]
}

// ValueOf returns the lattice element of an SSA value (⊥ for nil).
func (r *Result) ValueOf(v *ir.Value) lattice.Value {
	if v == nil {
		return lattice.Bottom
	}
	if lv, ok := r.Val[v]; ok {
		return lv
	}
	return lattice.Bottom
}

// OperandValue returns the lattice element of an instruction operand.
func (r *Result) OperandValue(op ir.Operand) lattice.Value {
	if op.Const != nil {
		return lattice.Of(op.Const)
	}
	if op.Val != nil {
		return r.ValueOf(op.Val)
	}
	return lattice.Bottom
}

// BranchDecision reports, for a conditional branch instruction, whether
// its condition folded to a constant, and if so which successor index is
// taken (0 = true arm, 1 = false arm).
func (r *Result) BranchDecision(br *ir.Instr) (taken int, folded bool) {
	if br.Op != ir.OpBr {
		return 0, false
	}
	v := r.valOperand(br.Args[0])
	if c := v.Const(); c != nil && c.Type == ir.Bool {
		if c.Bool {
			return 0, true
		}
		return 1, true
	}
	return 0, false
}

func (r *Result) valOperand(op ir.Operand) lattice.Value { return r.OperandValue(op) }

// Run analyzes proc. seed optionally pins the lattice value of entry
// values (the CONSTANTS(p) sets during complete propagation); entry
// values without a seed start at ⊥. cde may be nil.
func Run(proc *ir.Proc, seed map[*ir.Value]lattice.Value, cde CallDefEval) *Result {
	s := &solver{
		res: &Result{
			Proc:      proc,
			Val:       make(map[*ir.Value]lattice.Value),
			Reachable: make(map[*ir.Block]bool),
			edgeExec:  make(map[edge]bool),
		},
		cde:     cde,
		visited: make(map[*ir.Block]bool),
	}
	// Initialize non-instruction definitions: entry and undef values
	// are ⊥ unless seeded. (CallDefs are computed when their call runs.)
	for _, val := range proc.EntryValues {
		if sv, ok := seed[val]; ok {
			s.res.Val[val] = sv
		} else {
			s.res.Val[val] = lattice.Bottom
		}
	}
	s.flowWork = append(s.flowWork, flowItem{to: proc.Entry, predIdx: -1})
	s.run()
	return s.res
}

type flowItem struct {
	to      *ir.Block
	predIdx int // index of the incoming edge in to.Preds; -1 for entry
}

type solver struct {
	res      *Result
	cde      CallDefEval
	flowWork []flowItem
	ssaWork  []*ir.Instr
	visited  map[*ir.Block]bool
}

func (s *solver) run() {
	for len(s.flowWork) > 0 || len(s.ssaWork) > 0 {
		switch {
		case len(s.flowWork) > 0:
			item := s.flowWork[len(s.flowWork)-1]
			s.flowWork = s.flowWork[:len(s.flowWork)-1]
			s.flowEdge(item)
		case len(s.ssaWork) > 0:
			i := s.ssaWork[len(s.ssaWork)-1]
			s.ssaWork = s.ssaWork[:len(s.ssaWork)-1]
			if s.res.Reachable[i.Block] {
				s.visitInstr(i)
			}
		}
	}
}

func (s *solver) flowEdge(item flowItem) {
	b := item.to
	if item.predIdx >= 0 {
		e := edge{b, item.predIdx}
		if s.res.edgeExec[e] {
			return
		}
		s.res.edgeExec[e] = true
	}
	s.res.Reachable[b] = true
	if s.visited[b] {
		// Re-evaluate only the phis: a new incoming edge adds operands.
		for _, i := range b.Instrs {
			if i.Op != ir.OpPhi {
				break
			}
			s.visitInstr(i)
		}
		return
	}
	s.visited[b] = true
	for _, i := range b.Instrs {
		s.visitInstr(i)
	}
}

// lower updates a value's lattice element and wakes its uses. Lattice
// discipline: the new value must be ≤ the old one (monotone descent).
func (s *solver) lower(v *ir.Value, nv lattice.Value) {
	old, ok := s.res.Val[v]
	if !ok {
		old = lattice.Top
	}
	nv = lattice.Meet(old, nv)
	if nv.Equal(old) {
		return
	}
	s.res.Val[v] = nv
	s.ssaWork = append(s.ssaWork, v.Uses...)
}

func (s *solver) operand(op ir.Operand) lattice.Value {
	if op.Const != nil {
		return lattice.Of(op.Const)
	}
	if op.Val == nil {
		return lattice.Bottom // arrays and untracked uses
	}
	if v, ok := s.res.Val[op.Val]; ok {
		return v
	}
	return lattice.Top
}

func (s *solver) visitInstr(i *ir.Instr) {
	switch i.Op {
	case ir.OpPhi:
		s.visitPhi(i)
	case ir.OpBr:
		s.visitBranch(i)
	case ir.OpJmp:
		s.addFlowEdges(i.Block, 0)
	case ir.OpRet, ir.OpStop, ir.OpWrite, ir.OpAStore:
		// No definitions, no outgoing edges (Ret/Stop) or fallthrough
		// handled by the terminator itself.
	case ir.OpCall:
		s.visitCall(i)
	case ir.OpRead, ir.OpALoad, ir.OpI2R, ir.OpR2I:
		if i.Dst != nil {
			s.lower(i.Dst, lattice.Bottom)
		}
	case ir.OpCopy:
		if i.Dst != nil {
			s.lower(i.Dst, s.typedResult(i, s.operand(i.Args[0])))
		}
	default:
		if i.Dst != nil {
			s.lower(i.Dst, s.evalOp(i))
		}
	}
}

// typedResult forces ⊥ for destinations the analysis does not track
// (REAL variables).
func (s *solver) typedResult(i *ir.Instr, v lattice.Value) lattice.Value {
	if i.Var != nil && i.Var.Type == ir.Real {
		return lattice.Bottom
	}
	return v
}

func (s *solver) visitPhi(i *ir.Instr) {
	acc := lattice.Top
	for k := range i.Args {
		if !s.res.edgeExec[edge{i.Block, k}] {
			continue
		}
		acc = lattice.Meet(acc, s.operand(i.Args[k]))
	}
	s.lower(i.Dst, acc)
}

func (s *solver) visitBranch(i *ir.Instr) {
	v := s.operand(i.Args[0])
	switch {
	case v.IsTop():
		// Not enough information yet.
	case v.IsConst() && v.Const().Type == ir.Bool:
		if v.Const().Bool {
			s.addFlowEdges(i.Block, 0)
		} else {
			s.addFlowEdges(i.Block, 1)
		}
	default:
		s.addFlowEdges(i.Block, 0)
		s.addFlowEdges(i.Block, 1)
	}
}

// addFlowEdges enqueues the CFG edge from b through its succIdx-th
// successor.
func (s *solver) addFlowEdges(b *ir.Block, succIdx int) {
	if succIdx >= len(b.Succs) {
		return
	}
	to := b.Succs[succIdx]
	// Find which pred slot(s) of `to` correspond to this edge. With
	// duplicate edges (both branch arms to one block), succIdx 0 maps to
	// the first matching slot and succIdx 1 to the second.
	seen := 0
	want := 0
	if len(b.Succs) == 2 && b.Succs[0] == b.Succs[1] {
		want = succIdx
	}
	for pi, p := range to.Preds {
		if p != b {
			continue
		}
		if seen == want {
			s.flowWork = append(s.flowWork, flowItem{to: to, predIdx: pi})
			return
		}
		seen++
	}
	// Defensive: edge bookkeeping mismatch; mark the block reachable.
	s.flowWork = append(s.flowWork, flowItem{to: to, predIdx: -1})
}

func (s *solver) visitCall(i *ir.Instr) {
	argVal := func(k int) lattice.Value {
		if k < 0 || k >= len(i.Args) {
			return lattice.Bottom
		}
		return s.operand(i.Args[k])
	}
	eval := func(def *ir.Value) lattice.Value {
		if s.cde == nil {
			return lattice.Bottom
		}
		return s.cde(i, def, argVal)
	}
	if i.Dst != nil {
		s.lower(i.Dst, eval(i.Dst))
	}
	for _, def := range i.CallDefs {
		if def != nil {
			s.lower(def, eval(def))
		}
	}
}

// evalOp folds an arithmetic, comparison, or logical operation.
func (s *solver) evalOp(i *ir.Instr) lattice.Value {
	// Logical short-circuit precision: a constant false absorbs AND, a
	// constant true absorbs OR, regardless of the other operand.
	if i.Op == ir.OpAnd || i.Op == ir.OpOr {
		return s.evalLogical(i)
	}

	vals := make([]lattice.Value, 0, len(i.Args))
	for k := range i.Args {
		vals = append(vals, s.operand(i.Args[k]))
		if vals[k].IsBottom() {
			return lattice.Bottom
		}
	}
	for k := range vals {
		if vals[k].IsTop() {
			return lattice.Top
		}
	}

	switch i.Op {
	case ir.OpNot:
		c := vals[0].Const()
		if c.Type != ir.Bool {
			return lattice.Bottom
		}
		return lattice.OfBool(!c.Bool)
	case ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
		return s.compare(i.Op, vals[0], vals[1])
	}

	// Integer arithmetic; REAL operands (or destinations) are ⊥.
	ints := make([]int64, len(vals))
	for k := range vals {
		c, ok := vals[k].IntConst()
		if !ok {
			return lattice.Bottom
		}
		ints[k] = c
	}
	if i.Var != nil && i.Var.Type != ir.Int {
		return lattice.Bottom
	}
	r, ok := sym.FoldInt(i.Op, ints)
	if !ok {
		return lattice.Bottom
	}
	return lattice.OfInt(r)
}

func (s *solver) evalLogical(i *ir.Instr) lattice.Value {
	a := s.operand(i.Args[0])
	b := s.operand(i.Args[1])
	boolOf := func(v lattice.Value) (bool, bool) {
		if c := v.Const(); c != nil && c.Type == ir.Bool {
			return c.Bool, true
		}
		return false, false
	}
	av, aok := boolOf(a)
	bv, bok := boolOf(b)
	if i.Op == ir.OpAnd {
		if (aok && !av) || (bok && !bv) {
			return lattice.OfBool(false)
		}
		if aok && bok {
			return lattice.OfBool(av && bv)
		}
	} else {
		if (aok && av) || (bok && bv) {
			return lattice.OfBool(true)
		}
		if aok && bok {
			return lattice.OfBool(av || bv)
		}
	}
	if a.IsTop() || b.IsTop() {
		return lattice.Top
	}
	return lattice.Bottom
}

// compare folds a relational operation over integer constants.
func (s *solver) compare(op ir.Op, a, b lattice.Value) lattice.Value {
	x, okx := a.IntConst()
	y, oky := b.IntConst()
	if !okx || !oky {
		return lattice.Bottom // REAL comparisons are not folded
	}
	var r bool
	switch op {
	case ir.OpEq:
		r = x == y
	case ir.OpNe:
		r = x != y
	case ir.OpLt:
		r = x < y
	case ir.OpLe:
		r = x <= y
	case ir.OpGt:
		r = x > y
	case ir.OpGe:
		r = x >= y
	}
	return lattice.OfBool(r)
}
