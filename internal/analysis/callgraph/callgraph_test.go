package callgraph

import (
	"testing"

	"ipcp/internal/ir"
	"ipcp/internal/ir/irbuild"
	"ipcp/internal/mf/parser"
	"ipcp/internal/mf/sema"
)

func build(t *testing.T, src string) *ir.Program {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := sema.Analyze(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	return irbuild.Build(sp)
}

const chainSrc = `
PROGRAM MAIN
  CALL A(1)
  CALL B(2)
END
SUBROUTINE A(X)
  INTEGER X
  CALL B(X)
  RETURN
END
SUBROUTINE B(X)
  INTEGER X
  X = X + 1
  RETURN
END
SUBROUTINE ORPHAN(X)
  INTEGER X
  X = 0
  RETURN
END
`

func TestBuildEdges(t *testing.T) {
	p := build(t, chainSrc)
	g := Build(p)
	main := g.Nodes[p.ProcByName["MAIN"]]
	a := g.Nodes[p.ProcByName["A"]]
	b := g.Nodes[p.ProcByName["B"]]

	if len(main.Sites) != 2 {
		t.Fatalf("main sites: %d", len(main.Sites))
	}
	if len(main.Callees) != 2 {
		t.Fatalf("main callees: %d", len(main.Callees))
	}
	if len(b.Callers) != 2 {
		t.Fatalf("b callers: %d", len(b.Callers))
	}
	if len(a.Callees) != 1 || a.Callees[0] != b {
		t.Fatalf("a callees: %v", a.Callees)
	}
}

func TestBottomUpTopDown(t *testing.T) {
	p := build(t, chainSrc)
	g := Build(p)
	pos := map[string]int{}
	for i, n := range g.BottomUp() {
		pos[n.Proc.Name] = i
	}
	if !(pos["B"] < pos["A"] && pos["A"] < pos["MAIN"]) {
		t.Fatalf("bottom-up order wrong: %v", pos)
	}
	tdPos := map[string]int{}
	for i, n := range g.TopDown() {
		tdPos[n.Proc.Name] = i
	}
	if !(tdPos["MAIN"] < tdPos["A"] && tdPos["A"] < tdPos["B"]) {
		t.Fatalf("top-down order wrong: %v", tdPos)
	}
}

func TestReachableFromMain(t *testing.T) {
	p := build(t, chainSrc)
	g := Build(p)
	reach := g.ReachableFromMain()
	if !reach[p.ProcByName["B"]] {
		t.Error("B should be reachable")
	}
	if reach[p.ProcByName["ORPHAN"]] {
		t.Error("ORPHAN should not be reachable")
	}
}

func TestRecursionSCC(t *testing.T) {
	p := build(t, `
PROGRAM MAIN
  CALL EVEN(4)
END
SUBROUTINE EVEN(N)
  INTEGER N
  IF (N .GT. 0) CALL ODD(N-1)
  RETURN
END
SUBROUTINE ODD(N)
  INTEGER N
  IF (N .GT. 0) CALL EVEN(N-1)
  RETURN
END
SUBROUTINE SELF(N)
  INTEGER N
  IF (N .GT. 0) CALL SELF(N-1)
  RETURN
END
`)
	g := Build(p)
	even := g.Nodes[p.ProcByName["EVEN"]]
	odd := g.Nodes[p.ProcByName["ODD"]]
	self := g.Nodes[p.ProcByName["SELF"]]
	main := g.Nodes[p.ProcByName["MAIN"]]

	if even.SCC != odd.SCC {
		t.Error("EVEN and ODD should share an SCC")
	}
	if !g.InCycle(even) || !g.InCycle(odd) {
		t.Error("mutual recursion not detected")
	}
	if !g.InCycle(self) {
		t.Error("self recursion not detected")
	}
	if g.InCycle(main) {
		t.Error("MAIN is not recursive")
	}
	// Reverse topological: the EVEN/ODD component precedes MAIN's.
	if !(even.SCC < main.SCC) {
		t.Errorf("SCC order: even=%d main=%d", even.SCC, main.SCC)
	}
}

func TestSCCOrderProperty(t *testing.T) {
	p := build(t, chainSrc)
	g := Build(p)
	// For every edge u→v: SCC(v) <= SCC(u).
	for _, n := range g.BottomUp() {
		for _, m := range n.Callees {
			if m.SCC > n.SCC {
				t.Fatalf("edge %s→%s violates SCC order (%d > %d)",
					n.Proc.Name, m.Proc.Name, m.SCC, n.SCC)
			}
		}
	}
}
