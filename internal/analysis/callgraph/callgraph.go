// Package callgraph builds the program call graph the interprocedural
// propagation runs over, including Tarjan strongly-connected components
// and the bottom-up / top-down visit orders the jump-function generation
// phases need.
package callgraph

import "ipcp/internal/ir"

// Node is one procedure in the call graph.
type Node struct {
	Proc *ir.Proc

	// Sites lists every call instruction inside Proc.
	Sites []*ir.Instr

	// Callees and Callers are deduplicated adjacency lists.
	Callees []*Node
	Callers []*Node

	// SCC is the index of this node's strongly-connected component;
	// components are numbered in reverse topological order (callees
	// before callers).
	SCC int

	// visitation state for Tarjan's algorithm
	index, lowlink int
	onStack        bool
}

// Graph is the call graph of a program.
type Graph struct {
	Prog  *ir.Program
	Nodes map[*ir.Proc]*Node

	// SCCs lists the strongly-connected components in reverse
	// topological order: every call from SCCs[i] lands in SCCs[j] with
	// j <= i (j < i unless the call stays inside the component).
	SCCs [][]*Node
}

// Build constructs the call graph of p.
func Build(p *ir.Program) *Graph {
	g := &Graph{Prog: p, Nodes: make(map[*ir.Proc]*Node, len(p.Procs))}
	for _, proc := range p.Procs {
		g.Nodes[proc] = &Node{Proc: proc, index: -1}
	}
	for _, proc := range p.Procs {
		n := g.Nodes[proc]
		seen := map[*Node]bool{}
		for _, b := range proc.Blocks {
			for _, i := range b.Instrs {
				if i.Op != ir.OpCall {
					continue
				}
				n.Sites = append(n.Sites, i)
				callee := g.Nodes[i.Callee]
				if callee == nil {
					continue // defensive: unresolved callee
				}
				if !seen[callee] {
					seen[callee] = true
					n.Callees = append(n.Callees, callee)
					callee.Callers = append(callee.Callers, n)
				}
			}
		}
	}
	g.computeSCCs()
	return g
}

// computeSCCs runs Tarjan's algorithm. Tarjan emits components in
// reverse topological order of the condensation, exactly the bottom-up
// order return-jump-function generation wants.
func (g *Graph) computeSCCs() {
	var (
		counter int
		stack   []*Node
	)
	var strongConnect func(n *Node)
	strongConnect = func(n *Node) {
		n.index = counter
		n.lowlink = counter
		counter++
		stack = append(stack, n)
		n.onStack = true
		for _, m := range n.Callees {
			if m.index < 0 {
				strongConnect(m)
				if m.lowlink < n.lowlink {
					n.lowlink = m.lowlink
				}
			} else if m.onStack && m.index < n.lowlink {
				n.lowlink = m.index
			}
		}
		if n.lowlink == n.index {
			var comp []*Node
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				m.onStack = false
				m.SCC = len(g.SCCs)
				comp = append(comp, m)
				if m == n {
					break
				}
			}
			g.SCCs = append(g.SCCs, comp)
		}
	}
	// Visit in program order for determinism.
	for _, proc := range g.Prog.Procs {
		if n := g.Nodes[proc]; n.index < 0 {
			strongConnect(n)
		}
	}
}

// BottomUp returns the nodes so that every callee outside the caller's
// SCC appears before the caller (reverse topological over the
// condensation).
func (g *Graph) BottomUp() []*Node {
	var order []*Node
	for _, comp := range g.SCCs {
		order = append(order, comp...)
	}
	return order
}

// TopDown returns the reverse of BottomUp: callers before callees.
func (g *Graph) TopDown() []*Node {
	bu := g.BottomUp()
	td := make([]*Node, len(bu))
	for i, n := range bu {
		td[len(bu)-1-i] = n
	}
	return td
}

// InCycle reports whether the node's procedure participates in
// recursion (its SCC has more than one member, or it calls itself).
func (g *Graph) InCycle(n *Node) bool {
	if len(g.SCCs[n.SCC]) > 1 {
		return true
	}
	for _, m := range n.Callees {
		if m == n {
			return true
		}
	}
	return false
}

// ReachableFromMain returns the set of procedures transitively callable
// from the main program.
func (g *Graph) ReachableFromMain() map[*ir.Proc]bool {
	reach := make(map[*ir.Proc]bool)
	if g.Prog.Main == nil {
		return reach
	}
	var visit func(n *Node)
	visit = func(n *Node) {
		if reach[n.Proc] {
			return
		}
		reach[n.Proc] = true
		for _, m := range n.Callees {
			visit(m)
		}
	}
	visit(g.Nodes[g.Prog.Main])
	return reach
}
