package dce

import (
	"testing"

	"ipcp/internal/analysis/sccp"
	"ipcp/internal/ir"
	"ipcp/internal/ir/irbuild"
	"ipcp/internal/mf/parser"
	"ipcp/internal/mf/sema"
	"ipcp/internal/pass"
)

func buildProg(t *testing.T, src string) *ir.Program {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := sema.Analyze(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	return irbuild.Build(sp)
}

// TestPassPipeline drives the sccp→dce adapters through the pass
// manager: requiring sccp.FactResults provisions the SCCP pass
// automatically, DCE folds the constant branch, and the fixpoint
// re-provisions SCCP on the rebuilt program until nothing changes.
func TestPassPipeline(t *testing.T) {
	prog := buildProg(t, `
PROGRAM MAIN
  INTEGER K, X
  K = 1
  IF (K .EQ. 1) THEN
    X = 2
  ELSE
    X = 3
  ENDIF
  WRITE(*,*) X
END
`)
	before := 0
	for _, b := range prog.Main.Blocks {
		before += len(b.Instrs)
	}

	reg := pass.NewRegistry()
	reg.Register(sccp.NewPass(), sccp.FactResults)
	dp := NewPass()
	fix := pass.NewFixpoint("opt", dp, 10)
	ctx := pass.NewContext(prog)
	ctx.Debug = true
	if err := pass.Run(ctx, reg, fix); err != nil {
		t.Fatal(err)
	}

	np := ctx.Program()
	if np == prog {
		t.Fatal("DCE reported convergence without ever rebuilding the program")
	}
	after := 0
	for _, b := range np.Main.Blocks {
		after += len(b.Instrs)
	}
	if after >= before {
		t.Fatalf("DCE did not shrink MAIN: %d -> %d instrs", before, after)
	}
	if err := ir.VerifyProgram(np); err != nil {
		t.Fatalf("program fails verification after DCE: %v", err)
	}
	if _, ok := ctx.Fact(sccp.FactResults); !ok {
		t.Fatal("converged fixpoint should leave the last SCCP results cached")
	}

	// The trace shows the provider re-running each round: sccp, dce,
	// sccp, dce, summary.
	var names []string
	for _, st := range ctx.PassStats() {
		names = append(names, st.Pass)
	}
	want := []string{"sccp", "dce", "sccp", "dce", "opt"}
	if len(names) != len(want) {
		t.Fatalf("trace %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("trace %v, want %v", names, want)
		}
	}
	if fix.Rounds() != 1 {
		t.Fatalf("fixpoint rounds = %d, want 1", fix.Rounds())
	}
	// ProgramStats reflects the last Run — the converged no-op round —
	// so the transforming round shows up in the trace instead.
	if st := dp.ProgramStats(); st.Changed {
		t.Fatalf("final dce stats = %+v, want the converged no-op round", st)
	}
	stats := ctx.PassStats()
	if st := stats[1]; !st.Changed || st.Instrs >= st.InstrsBefore {
		t.Fatalf("round-1 dce entry = %+v, want a shrinking change", st)
	}
}
