// Package dce implements dead-code elimination for the paper's
// "complete propagation" experiment (Table 3, column 3): after an
// interprocedural propagation, branches controlled by interprocedural
// constants fold, their unreachable arms disappear, and useless
// computations are swept. The caller then re-runs the whole propagation
// from scratch (all lattice values reset to ⊤) on the cleaned program.
//
// The transformation takes a procedure in SSA form plus an SCCP result
// (seeded with the CONSTANTS sets) and produces a fresh pre-SSA
// procedure:
//
//  1. mark live instructions (side effects, escapes, and the transitive
//     closure over operands; conditions of folded branches stay dead);
//  2. clone the procedure without dead instructions (phis vanish — the
//     named variables carry the merges);
//  3. rewrite folded branches to jumps and prune unreachable blocks.
package dce

import (
	"ipcp/internal/analysis/sccp"
	"ipcp/internal/ir"
)

// RefOracle reports whether a callee may read a binding; it sharpens
// liveness at call sites (a global passed implicitly to a callee that
// never reads it does not keep the global's defining stores alive).
// modref.Summary implements it.
type RefOracle interface {
	RefFormal(callee *ir.Proc, idx int) bool
	RefGlobal(callee *ir.Proc, g *ir.GlobalVar) bool
}

// worstCaseRef keeps everything alive at call sites.
type worstCaseRef struct{}

func (worstCaseRef) RefFormal(*ir.Proc, int) bool           { return true }
func (worstCaseRef) RefGlobal(*ir.Proc, *ir.GlobalVar) bool { return true }

// Stats summarizes what one Transform removed.
type Stats struct {
	InstrsRemoved  int
	BlocksRemoved  int
	BranchesFolded int
	Changed        bool
}

// Options configures Transform. The zero value (nil) gives the paper's
// complete-propagation behavior: unreachable code and the condition
// chains of folded branches are removed, but reachable named assignments
// survive even when their values are unused — the substitution metric
// counts source references, and a statement-level dead-code eliminator
// does not delete live-path statements.
type Options struct {
	// Refs sharpens call-site liveness (may be nil: worst case).
	Refs RefOracle

	// SweepUseless additionally removes reachable assignments whose
	// values are never used (classic mark-sweep DCE over SSA).
	SweepUseless bool
}

// Transform returns a fresh pre-SSA copy of proc with dead code removed.
// res must come from sccp.Run on proc.
func Transform(proc *ir.Proc, res *sccp.Result, opts *Options) (*ir.Proc, Stats) {
	if opts == nil {
		opts = &Options{}
	}
	refs := opts.Refs
	if refs == nil {
		refs = worstCaseRef{}
	}
	live := markLive(proc, res, refs, opts.SweepUseless)

	// Record which conditional branches fold, by instruction identity.
	folded := make(map[*ir.Instr]int)
	for _, b := range proc.Blocks {
		if !res.Reachable[b] {
			continue
		}
		if t := b.Terminator(); t != nil && t.Op == ir.OpBr {
			if taken, ok := res.BranchDecision(t); ok {
				folded[t] = taken
			}
		}
	}

	var stats Stats
	kept := 0
	total := 0
	for _, b := range proc.Blocks {
		for _, i := range b.Instrs {
			if i.Op == ir.OpPhi || i.Op.IsTerminator() {
				continue
			}
			total++
			if live[i] && res.Reachable[b] {
				kept++
			}
		}
	}
	stats.InstrsRemoved = total - kept

	np := proc.CloneStripSSA(nil, func(i *ir.Instr) bool {
		return live[i] && res.Reachable[i.Block]
	})

	// Rewrite folded branches on the clone (IDs survive cloning, so
	// match by block position: clone blocks parallel original blocks).
	for bi, b := range proc.Blocks {
		nb := np.Blocks[bi]
		t := b.Terminator()
		if t == nil {
			continue
		}
		taken, ok := folded[t]
		if !ok {
			continue
		}
		nt := nb.Terminator()
		if nt == nil || nt.Op != ir.OpBr {
			continue
		}
		stats.BranchesFolded++
		removeEdge(nb, 1-taken)
		nt.Op = ir.OpJmp
		nt.Args = nil
	}

	before := len(np.Blocks)
	np.RemoveUnreachable()
	np.MergeTrivialJumps()
	stats.BlocksRemoved = before - len(np.Blocks)
	stats.Changed = stats.InstrsRemoved > 0 || stats.BlocksRemoved > 0 || stats.BranchesFolded > 0
	return np, stats
}

// removeEdge removes block b's succIdx-th outgoing edge, dropping one
// matching pred slot on the target.
func removeEdge(b *ir.Block, succIdx int) {
	target := b.Succs[succIdx]
	b.Succs = append(b.Succs[:succIdx:succIdx], b.Succs[succIdx+1:]...)
	for pi, p := range target.Preds {
		if p == b {
			target.Preds = append(target.Preds[:pi:pi], target.Preds[pi+1:]...)
			return
		}
	}
}

// markLive computes the live-instruction set. When sweepUseless is
// false, every reachable named assignment is a root (statement-level
// liveness); otherwise only side-effecting instructions are.
func markLive(proc *ir.Proc, res *sccp.Result, refs RefOracle, sweepUseless bool) map[*ir.Instr]bool {
	live := make(map[*ir.Instr]bool)
	var work []*ir.Instr

	mark := func(i *ir.Instr) {
		if i == nil || live[i] {
			return
		}
		live[i] = true
		work = append(work, i)
	}
	markOperand := func(op ir.Operand) {
		if op.Val != nil && op.Val.Def != nil {
			mark(op.Val.Def)
		}
	}

	// Roots: side-effecting and control instructions in reachable blocks.
	for _, b := range proc.Blocks {
		if !res.Reachable[b] {
			continue
		}
		for _, i := range b.Instrs {
			switch i.Op {
			case ir.OpCall, ir.OpAStore, ir.OpWrite, ir.OpRead,
				ir.OpRet, ir.OpStop, ir.OpJmp, ir.OpBr:
				mark(i)
			default:
				// Statement-level mode: a reachable assignment to a
				// named variable is a source statement and stays.
				if !sweepUseless && i.Op != ir.OpPhi && i.Var != nil && i.Var.Kind != ir.TempVar {
					mark(i)
				}
			}
		}
	}

	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		switch i.Op {
		case ir.OpBr:
			// A folded branch no longer reads its condition.
			if _, foldedBranch := res.BranchDecision(i); !foldedBranch {
				markOperand(i.Args[0])
			}
		case ir.OpCall:
			for a := range i.Args {
				if a >= i.NumActuals {
					// Implicit global use: live only if the callee may
					// actually read the global.
					g := globalOfCallArg(proc, i, a)
					if g != nil && !refs.RefGlobal(i.Callee, g) {
						continue
					}
				}
				markOperand(i.Args[a])
			}
		default:
			for a := range i.Args {
				markOperand(i.Args[a])
			}
		}
	}
	return live
}

// globalOfCallArg maps a call's implicit global-use argument index to
// its GlobalVar.
func globalOfCallArg(proc *ir.Proc, call *ir.Instr, a int) *ir.GlobalVar {
	gi := a - call.NumActuals
	if gi < 0 || gi >= len(proc.Prog.ScalarGlobals) {
		return nil
	}
	return proc.Prog.ScalarGlobals[gi]
}
