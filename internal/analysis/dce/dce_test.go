package dce

import (
	"strings"
	"testing"

	"ipcp/internal/analysis/sccp"
	"ipcp/internal/core/lattice"
	"ipcp/internal/ir"
	"ipcp/internal/ir/irbuild"
	"ipcp/internal/mf/parser"
	"ipcp/internal/mf/sema"
)

func buildSSA(t *testing.T, src string) *ir.Program {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := sema.Analyze(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	p := irbuild.Build(sp)
	for _, proc := range p.Procs {
		proc.BuildSSA(ir.WorstCase)
	}
	return p
}

func countOps(p *ir.Proc, op ir.Op) int {
	n := 0
	for _, b := range p.Blocks {
		for _, i := range b.Instrs {
			if i.Op == op {
				n++
			}
		}
	}
	return n
}

func TestRemovesConstantFalseArm(t *testing.T) {
	p := buildSSA(t, `
PROGRAM MAIN
  INTEGER DBG, X
  DBG = 0
  IF (DBG .NE. 0) THEN
    X = 111
    WRITE(*,*) X
  ENDIF
  X = 1
  WRITE(*,*) X
END
`)
	res := sccp.Run(p.Main, nil, nil)
	np, stats := Transform(p.Main, res, nil)
	if !stats.Changed || stats.BranchesFolded != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	if s := np.String(); strings.Contains(s, "111") {
		t.Fatalf("dead arm survived:\n%s", s)
	}
	if countOps(np, ir.OpBr) != 0 {
		t.Fatalf("branch not folded:\n%s", np)
	}
	// The clone is analyzable from scratch.
	np.BuildSSA(ir.WorstCase)
	res2 := sccp.Run(np, nil, nil)
	for _, b := range np.Blocks {
		if !res2.Reachable[b] {
			t.Fatalf("clone has unreachable block:\n%s", np)
		}
	}
}

func TestKeepsLiveBranch(t *testing.T) {
	p := buildSSA(t, `
PROGRAM MAIN
  INTEGER A, X
  READ A
  IF (A .GT. 0) THEN
    X = 1
  ELSE
    X = 2
  ENDIF
  WRITE(*,*) X
END
`)
	res := sccp.Run(p.Main, nil, nil)
	np, stats := Transform(p.Main, res, nil)
	if countOps(np, ir.OpBr) != 1 {
		t.Fatalf("live branch must survive:\n%s", np)
	}
	if stats.BranchesFolded != 0 {
		t.Fatalf("stats: %+v", stats)
	}
}

func TestUselessAssignmentsSwept(t *testing.T) {
	p := buildSSA(t, `
PROGRAM MAIN
  INTEGER A, B, C
  A = 1
  B = A + 2
  C = B * 3
  WRITE(*,*) A
END
`)
	res := sccp.Run(p.Main, nil, nil)
	np, stats := Transform(p.Main, res, &Options{SweepUseless: true})
	// B and C are useless; A feeds the WRITE.
	if stats.InstrsRemoved < 2 {
		t.Fatalf("stats: %+v\n%s", stats, np)
	}
	s := np.String()
	if strings.Contains(s, "C =") || strings.Contains(s, "B =") {
		t.Fatalf("useless assignments survived:\n%s", s)
	}
	if !strings.Contains(s, "A = copy 1") {
		t.Fatalf("live assignment missing:\n%s", s)
	}
}

func TestStatementLevelDefaultKeepsNamedAssignments(t *testing.T) {
	// The default (complete-propagation) mode deletes only unreachable
	// statements: a reachable assignment to a named variable survives
	// even when nothing reads it, because the substitution metric counts
	// source references.
	p := buildSSA(t, `
PROGRAM MAIN
  INTEGER A, B
  A = 1
  B = A + 2
  WRITE(*,*) A
END
`)
	res := sccp.Run(p.Main, nil, nil)
	np, stats := Transform(p.Main, res, nil)
	if stats.Changed {
		t.Fatalf("statement-level mode should not change clean code: %+v", stats)
	}
	if !strings.Contains(np.String(), "B = ") {
		t.Fatalf("named assignment swept in statement-level mode:\n%s", np)
	}
}

func TestEscapingValuesStayLive(t *testing.T) {
	// An assignment to a formal is live (the value escapes via Ret) even
	// when the procedure never reads it afterwards.
	p := buildSSA(t, `
PROGRAM MAIN
  INTEGER X
  CALL S(X)
END
SUBROUTINE S(A)
  INTEGER A
  A = 7
  RETURN
END
`)
	s := p.ProcByName["S"]
	res := sccp.Run(s, nil, nil)
	np, _ := Transform(s, res, nil)
	if !strings.Contains(np.String(), "A = copy 7") {
		t.Fatalf("escaping store removed:\n%s", np)
	}
}

func TestSeededConstantsExposeDeadCode(t *testing.T) {
	// The paper's mechanism: an interprocedural constant (DBG = 0)
	// makes the guarded assignment dead; removing it lets a later
	// propagation see GV as constant on exit.
	p := buildSSA(t, `
PROGRAM MAIN
  COMMON /C/ GV
  INTEGER GV
  CALL INIT(0)
END
SUBROUTINE INIT(DBG)
  INTEGER DBG
  COMMON /C/ GV
  INTEGER GV
  GV = 5
  IF (DBG .NE. 0) THEN
    READ GV
  ENDIF
  RETURN
END
`)
	init := p.ProcByName["INIT"]
	seed := map[*ir.Value]lattice.Value{}
	for v, val := range init.EntryValues {
		if v.Kind == ir.FormalVar && v.Index == 0 {
			seed[val] = lattice.OfInt(0)
		}
	}
	res := sccp.Run(init, seed, nil)
	np, stats := Transform(init, res, nil)
	if !stats.Changed {
		t.Fatalf("expected change, got %+v", stats)
	}
	if strings.Contains(np.String(), "read") {
		t.Fatalf("guarded READ survived:\n%s", np)
	}
	// Without the seed nothing folds and the READ stays.
	res2 := sccp.Run(init, nil, nil)
	np2, _ := Transform(init, res2, nil)
	if !strings.Contains(np2.String(), "read") {
		t.Fatalf("unseeded DCE should keep the READ:\n%s", np2)
	}
}

func TestLoopSurvives(t *testing.T) {
	p := buildSSA(t, `
PROGRAM MAIN
  INTEGER I, S
  S = 0
  DO I = 1, 10
    S = S + I
  ENDDO
  WRITE(*,*) S
END
`)
	res := sccp.Run(p.Main, nil, nil)
	np, _ := Transform(p.Main, res, nil)
	// Loop structure intact: a conditional branch remains.
	if countOps(np, ir.OpBr) != 1 {
		t.Fatalf("loop branch lost:\n%s", np)
	}
	np.BuildSSA(ir.WorstCase)
	res2 := sccp.Run(np, nil, nil)
	_ = res2
}

func TestIdempotentOnCleanCode(t *testing.T) {
	p := buildSSA(t, `
PROGRAM MAIN
  INTEGER A
  READ A
  A = A + 1
  WRITE(*,*) A
END
`)
	res := sccp.Run(p.Main, nil, nil)
	np, stats := Transform(p.Main, res, nil)
	if stats.Changed {
		t.Fatalf("clean code should not change: %+v\n%s", stats, np)
	}
}
