package dce

import (
	"fmt"

	"ipcp/internal/analysis/sccp"
	"ipcp/internal/ir"
	"ipcp/internal/pass"
)

// Pass is whole-program dead-code elimination as a pass-manager
// transform: it consumes the SCCP results published under
// sccp.FactResults (the runner provisions them automatically) and
// replaces the program with a fresh pre-SSA version when any procedure
// lost code. The complete-propagation DCE in internal/core is the
// interprocedurally-seeded variant of this pass.
type Pass struct {
	stats Stats
}

// NewPass builds the whole-program DCE pass.
func NewPass() *Pass { return &Pass{} }

func (p *Pass) Name() string             { return "dce" }
func (p *Pass) Requires() []pass.Fact    { return []pass.Fact{sccp.FactResults} }
func (p *Pass) Invalidates() []pass.Fact { return nil } // SetProgram already drops everything

func (p *Pass) Run(ctx *pass.Context) (bool, error) {
	v, ok := ctx.Fact(sccp.FactResults)
	if !ok {
		return false, fmt.Errorf("fact %q missing", sccp.FactResults)
	}
	results := v.(map[*ir.Proc]*sccp.Result)

	prog := ctx.Program()
	np := ir.NewProgram()
	np.Globals = prog.Globals
	np.ScalarGlobals = prog.ScalarGlobals
	p.stats = Stats{}
	changed := false
	for _, proc := range prog.Procs {
		nproc, stats := Transform(proc, results[proc], nil)
		if stats.Changed {
			changed = true
		}
		p.stats.InstrsRemoved += stats.InstrsRemoved
		p.stats.BlocksRemoved += stats.BlocksRemoved
		p.stats.BranchesFolded += stats.BranchesFolded
		np.AddProc(nproc)
	}
	if !changed {
		return false, nil
	}
	p.stats.Changed = true
	for _, proc := range np.Procs {
		for _, b := range proc.Blocks {
			for _, i := range b.Instrs {
				if i.Op == ir.OpCall {
					i.Callee = np.ProcByName[i.Callee.Name]
				}
			}
		}
	}
	ctx.SetProgram(np)
	return true, nil
}

// ProgramStats reports the accumulated removal counts of the last Run.
func (p *Pass) ProgramStats() Stats { return p.stats }
