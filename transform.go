package ipcp

import (
	"fmt"

	"ipcp/internal/mf/ast"
	"ipcp/internal/mf/parser"
	"ipcp/internal/mf/sema"
)

// TransformedSource implements the paper's output option (§4.1,
// "Recording the results"): "the analyzer can produce a transformed
// version of the original source in which the interprocedural constants
// are textually substituted into the code."
//
// The transformation is conservative so that the result is always a
// semantically equivalent MiniFortran program: a constant (name, value)
// from CONSTANTS(p) is substituted only when the procedure — including
// everything it calls — never modifies that name, in which case *every*
// textual reference reads the entry value and may become the literal.
// (References in procedures that conditionally reassign the name are
// exactly the ones a textual substitution could corrupt, so they stay;
// Report.TotalSubstituted, which works at the IR level, also counts the
// references before the reassignment.)
//
// The mod/ref facts come from the Program's cached pass Context — the
// source is reparsed only to obtain a private AST copy to mutate, never
// reanalyzed. Name-based matching is sound because a MiniFortran unit
// has a single flat namespace: within one unit, a bare name denotes one
// symbol, and array symbols never enter the substitution map.
//
// It returns the transformed source and the number of references
// replaced.
func (p *Program) TransformedSource(rep *Report) (string, int, error) {
	// Private AST copy to rewrite: reparse our own rendering (parse
	// only — no semantic analysis, no IR lowering).
	file, err := parser.Parse(ast.Format(p.sp.File))
	if err != nil {
		return "", 0, fmt.Errorf("ipcp: internal reparse failed: %w", err)
	}
	byName := make(map[string]*ast.Unit, len(file.Units))
	for _, u := range file.Units {
		byName[u.Name] = u
	}

	ctx := p.transformContext()
	irp := ctx.Program()
	mods := ctx.ModRef()

	total := 0
	for _, u := range p.sp.Units {
		pr := rep.Procedure(u.Name)
		if pr == nil || len(pr.Constants) == 0 {
			continue
		}
		proc := irp.ProcByName[u.Name]

		// Resolve each substitutable constant to the name it is read
		// under inside this unit, using the original (already analyzed)
		// symbol tables.
		values := make(map[string]int64)
		for _, c := range pr.Constants {
			switch {
			case !c.Global:
				s := u.Symbols[c.Name]
				if s == nil || s.Kind != sema.ParamSym || s.IsArray() {
					continue
				}
				if mods.ModFormal(proc, s.ParamIndex) {
					continue // reassigned somewhere: unsafe to substitute all refs
				}
				values[s.Name] = c.Value
			default:
				// Globals are named BLOCK.NAME canonically; find this
				// unit's view of that global.
				for _, s := range u.CommonVars {
					if s.Global != nil && s.Global.String() == c.Name && !s.IsArray() {
						g := irp.Globals[s.Global.ID]
						if !mods.ModGlobal(proc, g) {
							values[s.Name] = c.Value
						}
						break
					}
				}
			}
		}
		if len(values) == 0 {
			continue
		}
		au := byName[u.Name]
		if au == nil {
			continue
		}

		ast.RewriteExprs(au, func(e ast.Expr) ast.Expr {
			ref, ok := e.(*ast.VarRef)
			if !ok || len(ref.Indexes) != 0 {
				return e
			}
			v, found := values[ref.Name]
			if !found {
				return e
			}
			total++
			return &ast.IntLit{Value: v, LitPos: ref.NamePos}
		})
	}
	return ast.Format(file), total, nil
}
