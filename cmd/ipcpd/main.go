// Command ipcpd is the resident analysis server: a long-running daemon
// that keeps the summary cache and per-program snapshots hot in memory
// and serves interprocedural constant propagation queries over HTTP.
//
// Usage:
//
//	ipcpd [flags]
//
//	-addr :7117            listen address (use :0 for an ephemeral port)
//	-workers N             concurrent analyses (0 = one per CPU)
//	-queue N               admitted requests that may wait (0 = 4×workers)
//	-timeout 30s           default per-request deadline
//	-max-timeout 2m        cap on client-requested deadlines
//	-cache-dir DIR         persist the summary cache under DIR
//	-cache-budget BYTES    GC byte budget for the disk cache
//	-gc-interval 10m       sweep the disk cache this often (0 = never)
//
// Endpoints: POST /v1/analyze, POST /v1/transform, GET /v1/matrix,
// GET/PUT /v1/blob/{key} (the remote summary-cache tier), GET /healthz,
// GET /readyz, GET /metrics. See internal/server for the wire protocol
// and DESIGN.md ("The analysis server") for the design.
//
// SIGINT/SIGTERM drain gracefully: readiness goes false, open requests
// finish, then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ipcp/internal/server"
)

func main() {
	addr := flag.String("addr", ":7117", "listen address")
	workers := flag.Int("workers", 0, "concurrent analyses (0 = one per CPU)")
	queue := flag.Int("queue", 0, "admission queue depth (0 = 4×workers)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request deadline")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "cap on client-requested deadlines")
	cacheDir := flag.String("cache-dir", "", "persist the summary cache under this directory")
	cacheBudget := flag.Int64("cache-budget", 0, "GC byte budget for the disk cache (0 = unreferenced only)")
	gcInterval := flag.Duration("gc-interval", 0, "sweep the disk cache this often (0 = never)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for open requests")
	flag.Parse()

	logger := log.New(os.Stderr, "ipcpd: ", log.LstdFlags)
	srv, err := server.New(server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		CacheDir:       *cacheDir,
		CacheBudget:    *cacheBudget,
		GCInterval:     *gcInterval,
		Log:            logger,
	})
	if err != nil {
		logger.Fatal(err)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	// The exact line scripts/check.sh and operators parse for the bound
	// address (significant with -addr :0).
	fmt.Printf("ipcpd: listening on %s\n", l.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	select {
	case err := <-done:
		if err != nil {
			logger.Fatal(err)
		}
	case s := <-sig:
		logger.Printf("caught %s, draining", s)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Fatal(err)
		}
		logger.Printf("drained, exiting")
	}
}
