// Command ipcpd is the resident analysis server: a long-running daemon
// that keeps the summary cache and per-program snapshots hot in memory
// and serves interprocedural constant propagation queries over HTTP.
//
// Usage:
//
//	ipcpd [flags]
//
//	-addr :7117            listen address (use :0 for an ephemeral port)
//	-workers N             fleet mode: spawn N worker shards (0 = serve
//	                       in-process, no fleet)
//	-pool N                concurrent analyses per process (0 = one per CPU)
//	-queue N               admitted requests that may wait (0 = 4×pool)
//	-timeout 30s           default per-request deadline
//	-max-timeout 2m        cap on client-requested deadlines
//	-cache-dir DIR         persist the summary cache under DIR
//	                       (fleet mode: each shard under DIR/shard-<i>)
//	-cache-budget BYTES    GC byte budget for the disk cache
//	-gc-interval 10m       sweep the disk cache this often (0 = never)
//	-remote-cache URL      shared remote summary-cache tier (a peer
//	                       ipcpd's /v1/blob endpoint)
//	-wal                   journal cache puts for crash recovery
//	                       (default true; needs -cache-dir)
//
// With -workers N the process becomes a routing front end: it spawns N
// shared-nothing worker ipcpds on loopback ports, supervises them
// (crash restart with bounded backoff, failover while a shard is
// down), and routes each request to the shard owning its lineage by
// rendezvous hashing, so repeat edits of a program hit the worker
// holding its resident snapshot. Fleet mode adds POST /v1/batch. See
// DESIGN.md ("The analysis fleet").
//
// Endpoints: POST /v1/analyze, POST /v1/transform, POST /v1/batch,
// GET /v1/matrix, GET/PUT /v1/blob/{key} (the remote summary-cache
// tier; single-process only), GET /healthz, GET /readyz, GET /metrics.
// See internal/server for the wire protocol and DESIGN.md ("The
// analysis server") for the design.
//
// SIGINT/SIGTERM drain gracefully: readiness goes false, open requests
// finish (fleet mode forwards the drain to every worker), then the
// process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"syscall"
	"time"

	"ipcp/internal/fleet"
	"ipcp/internal/server"
)

func main() {
	addr := flag.String("addr", ":7117", "listen address")
	workers := flag.Int("workers", 0, "fleet mode: spawn this many worker shards (0 = serve in-process)")
	pool := flag.Int("pool", 0, "concurrent analyses per process (0 = one per CPU)")
	queue := flag.Int("queue", 0, "admission queue depth (0 = 4×pool)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request deadline")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "cap on client-requested deadlines")
	cacheDir := flag.String("cache-dir", "", "persist the summary cache under this directory")
	cacheBudget := flag.Int64("cache-budget", 0, "GC byte budget for the disk cache (0 = unreferenced only)")
	gcInterval := flag.Duration("gc-interval", 0, "sweep the disk cache this often (0 = never)")
	remoteCache := flag.String("remote-cache", "", "shared remote summary-cache tier (base URL of a peer ipcpd)")
	walOn := flag.Bool("wal", true, "journal cache puts to a write-ahead log for crash recovery (needs -cache-dir)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for open requests")
	flag.Parse()

	logger := log.New(os.Stderr, "ipcpd: ", log.LstdFlags)

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	// The exact line scripts/check.sh, the fleet supervisor, and
	// operators parse for the bound address (significant with -addr :0).
	fmt.Printf("ipcpd: listening on %s\n", l.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)

	if *workers > 0 {
		runFleet(l, sig, logger, *workers, *pool, *queue, *timeout, *maxTimeout,
			*cacheDir, *cacheBudget, *gcInterval, *remoteCache, *walOn, *drainTimeout)
		return
	}

	srv, err := server.New(server.Config{
		Workers:        *pool,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		CacheDir:       *cacheDir,
		CacheBudget:    *cacheBudget,
		GCInterval:     *gcInterval,
		RemoteCache:    *remoteCache,
		DisableWAL:     !*walOn,
		Log:            logger,
	})
	if err != nil {
		logger.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	select {
	case err := <-done:
		if err != nil {
			logger.Fatal(err)
		}
	case s := <-sig:
		logger.Printf("caught %s, draining", s)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Fatal(err)
		}
		logger.Printf("drained, exiting")
	}
}

// runFleet serves l as a routing front end over n spawned worker
// shards, each this same binary in single-process mode on an ephemeral
// loopback port.
func runFleet(l net.Listener, sig chan os.Signal, logger *log.Logger, n, pool, queue int,
	timeout, maxTimeout time.Duration, cacheDir string, cacheBudget int64,
	gcInterval time.Duration, remoteCache string, walOn bool, drainTimeout time.Duration) {

	bin, err := os.Executable()
	if err != nil {
		logger.Fatal(err)
	}
	args := func(shard int) []string {
		a := []string{
			"-addr", "127.0.0.1:0",
			"-pool", strconv.Itoa(pool),
			"-queue", strconv.Itoa(queue),
			"-timeout", timeout.String(),
			"-max-timeout", maxTimeout.String(),
			"-drain-timeout", drainTimeout.String(),
		}
		if cacheDir != "" {
			// Each shard journals into its own directory, so a crashed
			// worker's replacement recovers exactly its shard's puts.
			a = append(a, "-cache-dir", filepath.Join(cacheDir, fmt.Sprintf("shard-%d", shard)))
			a = append(a, "-wal="+strconv.FormatBool(walOn))
		}
		if cacheBudget != 0 {
			a = append(a, "-cache-budget", strconv.FormatInt(cacheBudget, 10))
		}
		if gcInterval != 0 {
			a = append(a, "-gc-interval", gcInterval.String())
		}
		if remoteCache != "" {
			a = append(a, "-remote-cache", remoteCache)
		}
		return a
	}

	fl, err := fleet.New(fleet.Config{
		Workers:      n,
		Start:        fleet.ProcessSpawner(bin, args, logger),
		DrainTimeout: drainTimeout,
		Log:          logger,
	})
	if err != nil {
		logger.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	if err := fl.Start(ctx); err != nil {
		cancel()
		logger.Fatal(err)
	}
	cancel()
	logger.Printf("fleet: %d workers ready", n)

	done := make(chan error, 1)
	go func() { done <- fl.Serve(l) }()

	select {
	case err := <-done:
		if err != nil {
			logger.Fatal(err)
		}
	case s := <-sig:
		logger.Printf("caught %s, draining fleet", s)
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := fl.Shutdown(ctx); err != nil {
			logger.Fatal(err)
		}
		logger.Printf("drained, exiting")
	}
}
