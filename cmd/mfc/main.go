// Command mfc is the MiniFortran front-end driver: it parses, checks,
// and lowers a program, and dumps the requested intermediate form. It is
// the debugging companion to cmd/ipcp.
//
// Usage:
//
//	mfc -dump ast file.f       # pretty-printed source (round-trip)
//	mfc -dump ir file.f        # three-address IR before SSA
//	mfc -dump ssa file.f       # IR in SSA form (MOD-based call effects)
//	mfc -dump callgraph file.f # call graph with SCCs
//	mfc -dump modref file.f    # interprocedural MOD/REF summaries
//	mfc -dump dot file.f       # call graph in Graphviz dot form
//	mfc -suite ocean -dump ssa # dump a generated suite program
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ipcp/internal/analysis/callgraph"
	"ipcp/internal/analysis/modref"
	"ipcp/internal/cli"
	"ipcp/internal/ir"
	"ipcp/internal/ir/irbuild"
	"ipcp/internal/mf/ast"
	"ipcp/internal/mf/parser"
	"ipcp/internal/mf/sema"
	"ipcp/internal/suite"
)

func main() {
	dump := flag.String("dump", "ssa", "what to print: ast, ir, ssa, callgraph, modref")
	suiteName := flag.String("suite", "", "dump a generated benchmark program instead of a file")
	scale := flag.Int("scale", suite.DefaultScale, "generation scale for -suite")
	flag.Parse()

	src, _, err := cli.Source(*suiteName, *scale, flag.Args())
	if err != nil {
		cli.Fatal("mfc", err)
	}

	file, err := parser.Parse(src)
	if err != nil {
		cli.Fatal("mfc", err)
	}
	if *dump == "ast" {
		fmt.Print(ast.Format(file))
		return
	}
	sp, err := sema.Analyze(file)
	if err != nil {
		cli.Fatal("mfc", err)
	}
	prog := irbuild.Build(sp)

	switch *dump {
	case "ir":
		for _, p := range prog.Procs {
			fmt.Println(p)
		}
	case "ssa":
		cg := callgraph.Build(prog)
		mods := modref.Compute(prog, cg)
		for _, p := range prog.Procs {
			p.BuildSSA(mods.Oracle())
			fmt.Println(p)
		}
	case "callgraph":
		cg := callgraph.Build(prog)
		for _, n := range cg.TopDown() {
			callees := make([]string, len(n.Callees))
			for i, m := range n.Callees {
				callees[i] = m.Proc.Name
			}
			cycle := ""
			if cg.InCycle(n) {
				cycle = "  (recursive)"
			}
			fmt.Printf("%-12s scc=%d sites=%d -> [%s]%s\n",
				n.Proc.Name, n.SCC, len(n.Sites), strings.Join(callees, " "), cycle)
		}
	case "dot":
		// Graphviz rendering of the call graph:
		//   mfc -dump dot prog.f | dot -Tsvg > callgraph.svg
		cg := callgraph.Build(prog)
		fmt.Println("digraph callgraph {")
		fmt.Println("  node [shape=box, fontname=\"monospace\"];")
		for _, n := range cg.TopDown() {
			shape := ""
			if n.Proc.Kind == ir.MainProc {
				shape = " [style=bold]"
			}
			if cg.InCycle(n) {
				shape = " [style=dashed]"
			}
			fmt.Printf("  %s%s;\n", n.Proc.Name, shape)
			seen := map[string]int{}
			for _, site := range n.Sites {
				seen[site.Callee.Name]++
			}
			for callee, count := range seen {
				label := ""
				if count > 1 {
					label = fmt.Sprintf(" [label=\"×%d\"]", count)
				}
				fmt.Printf("  %s -> %s%s;\n", n.Proc.Name, callee, label)
			}
		}
		fmt.Println("}")
	case "modref":
		cg := callgraph.Build(prog)
		mods := modref.Compute(prog, cg)
		for _, p := range prog.Procs {
			var mf, rf []string
			for i, f := range p.Formals {
				if mods.ModFormal(p, i) {
					mf = append(mf, f.Name)
				}
				if mods.RefFormal(p, i) {
					rf = append(rf, f.Name)
				}
			}
			for _, g := range prog.Globals {
				if mods.ModGlobal(p, g) {
					mf = append(mf, g.String())
				}
				if mods.RefGlobal(p, g) {
					rf = append(rf, g.String())
				}
			}
			fmt.Printf("%-12s MOD={%s}  REF={%s}\n",
				p.Name, strings.Join(mf, " "), strings.Join(rf, " "))
		}
	default:
		fmt.Fprintf(os.Stderr, "mfc: unknown dump kind %q\n", *dump)
		os.Exit(2)
	}
}
