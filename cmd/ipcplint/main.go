// Command ipcplint runs the repo's invariant-checker suite
// (internal/lint): five custom static analyzers encoding the
// correctness invariants the analyzer itself rests on — deterministic
// iteration order at every emission/hash site (mapiter), monotone
// lattice descent (latticeflow), cancellation polling in unbounded
// loops (cancelpoll), the durability ack contract on codec/WAL/store
// errors (codecerr), and a /metrics exposition that matches its
// declarations (metricreg).
//
// It runs two ways:
//
//	ipcplint [-only a,b] [packages]      # standalone multichecker
//	go vet -vettool=$(pwd)/ipcplint ./...  # as a vet tool (CI gate)
//
// Diagnostics print as `file:line:col: message [analyzer]`; the exit
// code is 2 when any were found. False positives are suppressed in
// place with `//lint:ignore <analyzers> <reason>` — see the package
// documentation of internal/lint for the suppression policy.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ipcp/internal/lint"
	"ipcp/internal/lint/driver"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	// cmd/go probes `<tool> -V=full` for a content-based tool ID and
	// `<tool> -flags` for the flags it may pass through; answer both
	// before ordinary flag parsing so the probes never trip over suite
	// flags.
	for _, a := range args {
		if a == "-V=full" || a == "-V" {
			fmt.Fprintf(stdout, "ipcplint version devel buildID=%s\n", selfID())
			return 0
		}
		if a == "-flags" {
			fmt.Fprintln(stdout, `[{"Name":"only","Bool":false,"Usage":"comma-separated analyzer names to run (default: all)"}]`)
			return 0
		}
	}

	fs := flag.NewFlagSet("ipcplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: ipcplint [-only a,b] [package patterns]\n")
		fmt.Fprintf(stderr, "       go vet -vettool=/path/to/ipcplint ./...\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}

	analyzers, err := lint.Select(lint.All(), *only)
	if err != nil {
		fmt.Fprintf(stderr, "ipcplint: %v\n", err)
		return 1
	}

	if *list {
		for _, a := range lint.All() {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, doc)
		}
		return 0
	}

	// Vet-tool mode: cmd/go invokes the tool with a single JSON
	// config argument.
	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return driver.RunVet(rest[0], analyzers, stderr)
	}

	// Standalone mode over package patterns.
	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	units, err := driver.Load(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "ipcplint: %v\n", err)
		return 1
	}
	total := 0
	for _, unit := range units {
		findings, err := driver.RunAnalyzers(unit, analyzers)
		if err != nil {
			fmt.Fprintf(stderr, "ipcplint: %v\n", err)
			return 1
		}
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
		total += len(findings)
	}
	if total > 0 {
		fmt.Fprintf(stderr, "ipcplint: %d finding(s)\n", total)
		return 2
	}
	return 0
}

// selfID hashes the running binary so cmd/go's action cache
// invalidates whenever the tool itself changes.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}
