// Command tables regenerates the paper's exhibits (Figure 1 and
// Tables 1–3 of Grove & Torczon, PLDI 1993) over the synthetic
// benchmark suite.
//
// Usage:
//
//	tables              # everything
//	tables -figure1     # just the lattice figure
//	tables -table1      # program characteristics
//	tables -table2      # constants per jump-function flavor
//	tables -table3      # MOD / complete / intraprocedural comparison
//	tables -scale 8     # regenerate the suite at a different scale
package main

import (
	"flag"
	"fmt"
	"os"

	"ipcp"
	"ipcp/internal/report"
	"ipcp/internal/suite"
)

func main() {
	fig1 := flag.Bool("figure1", false, "print Figure 1 (the lattice) only")
	t1 := flag.Bool("table1", false, "print Table 1 only")
	t2 := flag.Bool("table2", false, "print Table 2 only")
	t3 := flag.Bool("table3", false, "print Table 3 only")
	cloning := flag.Bool("cloning", false, "print the procedure-cloning extension table only")
	integration := flag.Bool("integration", false, "print the procedure-integration extension table only")
	scale := flag.Int("scale", suite.DefaultScale, "suite generation scale")
	flag.Parse()

	if *fig1 {
		fmt.Print(report.Figure1())
		return
	}

	progs := loadSuite(*scale)
	any := false
	if *t1 {
		fmt.Print(report.Table1(progs).Render())
		any = true
	}
	if *t2 {
		if any {
			fmt.Println()
		}
		fmt.Print(report.Table2(progs).Render())
		any = true
	}
	if *t3 {
		if any {
			fmt.Println()
		}
		fmt.Print(report.Table3(progs).Render())
		any = true
	}
	if *cloning {
		if any {
			fmt.Println()
		}
		fmt.Print(report.TableCloning(progs).Render())
		any = true
	}
	if *integration {
		if any {
			fmt.Println()
		}
		fmt.Print(report.TableIntegration(progs).Render())
		any = true
	}
	if !any {
		fmt.Print(report.Figure1())
		fmt.Println()
		fmt.Print(report.Table1(progs).Render())
		fmt.Println()
		fmt.Print(report.Table2(progs).Render())
		fmt.Println()
		fmt.Print(report.Table3(progs).Render())
	}
}

func loadSuite(scale int) []*report.Loaded {
	var ls []*report.Loaded
	for _, name := range suite.Names() {
		p := suite.Generate(name, scale)
		prog, err := ipcp.Load(p.Source)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tables: generated program %s is invalid: %v\n", name, err)
			os.Exit(1)
		}
		ls = append(ls, report.NewLoaded(p, prog))
	}
	return ls
}
