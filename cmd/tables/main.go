// Command tables regenerates the paper's exhibits (Figure 1 and
// Tables 1–3 of Grove & Torczon, PLDI 1993) over the synthetic
// benchmark suite.
//
// Usage:
//
//	tables              # everything
//	tables -figure1     # just the lattice figure
//	tables -table1      # program characteristics
//	tables -table2      # constants per jump-function flavor
//	tables -table3      # MOD / complete / intraprocedural comparison
//	tables -scale 8     # regenerate the suite at a different scale
//	tables -j 2         # cap table generation at 2 OS threads
package main

import (
	"flag"
	"fmt"
	"runtime"

	"ipcp"
	"ipcp/internal/cli"
	"ipcp/internal/report"
	"ipcp/internal/suite"
)

func main() {
	fig1 := flag.Bool("figure1", false, "print Figure 1 (the lattice) only")
	t1 := flag.Bool("table1", false, "print Table 1 only")
	t2 := flag.Bool("table2", false, "print Table 2 only")
	t3 := flag.Bool("table3", false, "print Table 3 only")
	cloning := flag.Bool("cloning", false, "print the procedure-cloning extension table only")
	integration := flag.Bool("integration", false, "print the procedure-integration extension table only")
	scale := flag.Int("scale", suite.DefaultScale, "suite generation scale")
	workers := flag.Int("j", 0, "parallelism cap (0 = one per CPU); bounds both the per-program fan-out and each program's configuration matrix")
	flag.Parse()
	if *workers > 0 {
		// Table generation fans out at two levels: one goroutine per
		// program row, and a worker pool per configuration matrix.
		// Capping GOMAXPROCS bounds the whole tree with one knob.
		runtime.GOMAXPROCS(*workers)
	}

	if *fig1 {
		fmt.Print(report.Figure1())
		return
	}

	progs := loadSuite(*scale)
	any := false
	if *t1 {
		fmt.Print(report.Table1(progs).Render())
		any = true
	}
	if *t2 {
		if any {
			fmt.Println()
		}
		fmt.Print(report.Table2(progs).Render())
		any = true
	}
	if *t3 {
		if any {
			fmt.Println()
		}
		fmt.Print(report.Table3(progs).Render())
		any = true
	}
	if *cloning {
		if any {
			fmt.Println()
		}
		fmt.Print(report.TableCloning(progs).Render())
		any = true
	}
	if *integration {
		if any {
			fmt.Println()
		}
		fmt.Print(report.TableIntegration(progs).Render())
		any = true
	}
	if !any {
		fmt.Print(report.Figure1())
		fmt.Println()
		fmt.Print(report.Table1(progs).Render())
		fmt.Println()
		fmt.Print(report.Table2(progs).Render())
		fmt.Println()
		fmt.Print(report.Table3(progs).Render())
	}
}

func loadSuite(scale int) []*report.Loaded {
	return suite.Run(scale, 0, func(p *suite.Program) *report.Loaded {
		prog, err := ipcp.Load(p.Source)
		if err != nil {
			cli.Fatal("tables", fmt.Errorf("generated program %s is invalid: %w", p.Name, err))
		}
		return report.NewLoaded(p, prog)
	})
}
