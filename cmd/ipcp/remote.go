package main

import (
	"context"
	"fmt"

	"ipcp"
	"ipcp/internal/cli"
	"ipcp/internal/server"
	"ipcp/internal/server/client"
)

// This file is cmd/ipcp's -server mode: the same flags and output as a
// local run, but the analysis happens in a resident ipcpd daemon whose
// warm summary cache makes repeat runs over an edited program
// incremental across processes.

// remoteOpts are the output toggles remote mode honors.
type remoteOpts struct {
	emit        bool
	constants   bool
	stats       bool
	tracePasses bool
}

// runRemote analyzes src via the ipcpd at addr and prints the standard
// report. The program is named so the daemon threads successive runs
// through one snapshot lineage.
func runRemote(addr, src, name string, cfg ipcp.Config, opts remoteOpts) {
	ctx := context.Background()
	c := client.New(addr)

	if opts.stats {
		// Program characteristics are syntactic; computing them needs a
		// parse, not an analysis, so they stay local.
		prog, err := ipcp.Load(src)
		if err != nil {
			cli.Fatal("ipcp", err)
		}
		st := prog.Stats()
		fmt.Printf("%s: %d lines, %d procedures, %d call sites, %.1f mean / %.1f median lines per procedure\n",
			name, st.Lines, st.Procedures, st.CallSites, st.MeanLinesPerProc, st.MedianLinesPerProc)
	}

	resp, err := c.Analyze(ctx, server.AnalyzeRequest{
		Source:  src,
		Program: name,
		Config:  server.ConfigOf(cfg),
	})
	if err != nil {
		cli.Fatal("ipcp", err)
	}
	rep := resp.Report
	printSummary(name, cfg, rep)

	if opts.tracePasses {
		fmt.Print(rep.PassTrace())
	}

	if opts.emit {
		tr, err := c.Transform(ctx, server.TransformRequest{
			Source:  src,
			Program: name,
			Config:  server.ConfigOf(cfg),
		})
		if err != nil {
			cli.Fatal("ipcp", err)
		}
		fmt.Printf("! transformed source: %d references substituted\n%s", tr.Substituted, tr.Source)
	}

	if opts.constants {
		printConstants(rep)
	}
}
