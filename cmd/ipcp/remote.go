package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"ipcp"
	"ipcp/internal/cli"
	"ipcp/internal/server"
	"ipcp/internal/server/client"
)

// This file is cmd/ipcp's -server mode: the same flags and output as a
// local run, but the analysis happens in a resident ipcpd daemon whose
// warm summary cache makes repeat runs over an edited program
// incremental across processes. With several file arguments the run
// becomes one POST /v1/batch — against a fleet ipcpd the daemon fans
// the files out across worker shards concurrently.

// remoteRetryBusy caps the client's one retry after a 429: the daemon
// asked us to back off, so a short wait usually lands the request.
const remoteRetryBusy = 2 * time.Second

// remoteOpts are the output toggles remote mode honors.
type remoteOpts struct {
	emit        bool
	constants   bool
	stats       bool
	tracePasses bool
}

// runRemote analyzes src via the ipcpd at addr and prints the standard
// report. The program is named so the daemon threads successive runs
// through one snapshot lineage.
func runRemote(addr, src, name string, cfg ipcp.Config, opts remoteOpts) {
	ctx := context.Background()
	c := client.New(addr).RetryBusy(remoteRetryBusy)

	if opts.stats {
		// Program characteristics are syntactic; computing them needs a
		// parse, not an analysis, so they stay local.
		prog, err := ipcp.Load(src)
		if err != nil {
			cli.Fatal("ipcp", err)
		}
		st := prog.Stats()
		fmt.Printf("%s: %d lines, %d procedures, %d call sites, %.1f mean / %.1f median lines per procedure\n",
			name, st.Lines, st.Procedures, st.CallSites, st.MeanLinesPerProc, st.MedianLinesPerProc)
	}

	resp, err := c.Analyze(ctx, server.AnalyzeRequest{
		Source:  src,
		Program: name,
		Config:  server.ConfigOf(cfg),
	})
	if err != nil {
		cli.Fatal("ipcp", err)
	}
	rep := resp.Report
	printSummary(name, cfg, rep)

	if opts.tracePasses {
		fmt.Print(rep.PassTrace())
	}

	if opts.emit {
		tr, err := c.Transform(ctx, server.TransformRequest{
			Source:  src,
			Program: name,
			Config:  server.ConfigOf(cfg),
		})
		if err != nil {
			cli.Fatal("ipcp", err)
		}
		fmt.Printf("! transformed source: %d references substituted\n%s", tr.Substituted, tr.Source)
	}

	if opts.constants {
		printConstants(rep)
	}
}

// runRemoteMetrics prints the daemon's /metrics exposition (-server
// -metrics) — the scriptable way to read routing distribution and
// restart counters off a fleet.
func runRemoteMetrics(addr string) {
	text, err := client.New(addr).Metrics(context.Background())
	if err != nil {
		cli.Fatal("ipcp", err)
	}
	fmt.Print(text)
}

// runRemoteBatch analyzes several files in one /v1/batch request and
// prints each file's standard report (or its per-item error) in
// argument order. Exits nonzero if any item failed — partial results
// are still printed first.
func runRemoteBatch(addr string, files []string, cfg ipcp.Config, opts remoteOpts) {
	ctx := context.Background()
	c := client.New(addr).RetryBusy(remoteRetryBusy)

	req := server.BatchRequest{Config: server.ConfigOf(cfg)}
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			cli.Fatal("ipcp", err)
		}
		req.Items = append(req.Items, server.BatchItem{Source: string(data), Program: path})
	}

	results, err := c.Batch(ctx, req)
	if err != nil {
		cli.Fatal("ipcp", err)
	}
	failed := 0
	for i, res := range results {
		if !res.OK() {
			failed++
			fmt.Fprintf(os.Stderr, "ipcp: %s: %s (HTTP %d)\n", files[i], res.Error, res.Status)
			continue
		}
		printSummary(files[i], cfg, res.Report)
		if opts.tracePasses {
			fmt.Print(res.Report.PassTrace())
		}
		if opts.constants {
			printConstants(res.Report)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "ipcp: %d/%d files failed\n", failed, len(files))
		os.Exit(1)
	}
}
