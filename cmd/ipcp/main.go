// Command ipcp analyzes a MiniFortran program with the interprocedural
// constant propagation framework of Grove & Torczon (PLDI 1993) and
// reports the CONSTANTS sets and substitution counts.
//
// Usage:
//
//	ipcp [flags] file.f
//	ipcp [flags] -suite ocean          # analyze a generated suite program
//	ipcp -server :7117 a.f b.f c.f     # one /v1/batch request; a fleet
//	                                   # daemon fans the files across shards
//
// Flags select the configuration (one column of the paper's tables):
//
//	-jump literal|intra|passthrough|polynomial   forward jump function
//	-noret      disable return jump functions
//	-nomod      disable interprocedural MOD information
//	-complete   iterate propagation with dead-code elimination
//	-all        run all four flavors and print a comparison
//	-constants  list every CONSTANTS(p) entry
//	-stats      print program characteristics (Table 1 row)
//	-j N        analysis worker count (0 = one per CPU, 1 = sequential)
//
// The program database (incremental re-analysis):
//
//	-cache-dir DIR     persist summaries and a per-config snapshot under
//	                   DIR; a second run over an edited program re-analyzes
//	                   only the procedures the edit invalidated
//	-remote-cache URL  add a shared remote tier behind the local cache: a
//	                   blob service speaking ipcpd's /v1/blob protocol;
//	                   remote failures degrade to recomputation
//	-wal               journal cache puts for crash recovery (default
//	                   true with -cache-dir; -wal=false disables)
//	-baseline old.f    analyze old.f first to warm the cache, then analyze
//	                   the input incrementally against it
//
// With -all the four flavors run through one shared cache, so flavors
// 2–4 reuse the stage-1 summaries (return jump functions, MOD/REF,
// use counts) flavor 1 wrote — the table's s1-hits column shows it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ipcp"
	"ipcp/internal/cli"
	"ipcp/internal/suite"
)

var jumpNames = map[string]ipcp.JumpFunction{
	"literal":     ipcp.Literal,
	"intra":       ipcp.Intraprocedural,
	"passthrough": ipcp.PassThrough,
	"polynomial":  ipcp.Polynomial,
}

func main() {
	jumpFlag := flag.String("jump", "passthrough", "forward jump function: literal, intra, passthrough, polynomial")
	noRet := flag.Bool("noret", false, "disable return jump functions")
	noMod := flag.Bool("nomod", false, "disable interprocedural MOD information")
	complete := flag.Bool("complete", false, "iterate propagation with dead-code elimination")
	all := flag.Bool("all", false, "compare all four jump-function flavors")
	cloneFlag := flag.Bool("clone", false, "apply goal-directed procedure cloning and report the gain")
	listConstants := flag.Bool("constants", false, "list every CONSTANTS(p) entry")
	emit := flag.Bool("emit", false, "print the transformed source with constants substituted")
	verify := flag.Bool("verify", false, "execute the program and check every reported constant against observed runtime values")
	stats := flag.Bool("stats", false, "print program characteristics")
	suiteName := flag.String("suite", "", "analyze a generated benchmark program instead of a file")
	scale := flag.Int("scale", suite.DefaultScale, "generation scale for -suite")
	workers := flag.Int("j", 0, "analysis workers (0 = one per CPU, 1 = sequential)")
	cacheDir := flag.String("cache-dir", "", "persist summaries and a snapshot under this directory and re-analyze incrementally")
	remoteCache := flag.String("remote-cache", "", "share summaries through a blob service at this URL (ipcpd's /v1/blob endpoint), tiered behind the local cache")
	walOn := flag.Bool("wal", true, "journal cache puts to a write-ahead log for crash recovery (needs -cache-dir; -wal=false disables)")
	warm := flag.Bool("warm", true, "warm-start the incremental solve from the previous snapshot's fixpoint (-warm=false forces a cold solve)")
	baseline := flag.String("baseline", "", "warm the cache from this source file, then analyze the input incrementally")
	cacheGC := flag.Bool("cache-gc", false, "garbage-collect the -cache-dir (delete unreferenced summaries, enforce -cache-budget) and exit")
	cacheBudget := flag.Int64("cache-budget", 0, "byte budget for -cache-gc (0 = delete only unreferenced summaries)")
	serverAddr := flag.String("server", "", "route the analysis through a running ipcpd at this address instead of analyzing in-process")
	metricsDump := flag.Bool("metrics", false, "with -server: print the daemon's /metrics exposition and exit")
	passes := flag.Bool("passes", false, "print the pass pipeline the configuration would run, then exit")
	tracePasses := flag.Bool("trace-passes", false, "print the per-pass execution table after analysis")
	debug := flag.Bool("debug", false, "verify the IR between passes and fail fast naming a corrupting pass")
	flag.Parse()

	j, ok := jumpNames[strings.ToLower(*jumpFlag)]
	if !ok {
		fmt.Fprintf(os.Stderr, "ipcp: unknown jump function %q\n", *jumpFlag)
		os.Exit(2)
	}

	if *passes {
		cfg := ipcp.Config{
			Jump:                j,
			ReturnJumpFunctions: !*noRet,
			MOD:                 !*noMod,
			Complete:            *complete,
		}
		for _, line := range ipcp.DescribePipeline(cfg) {
			fmt.Println(line)
		}
		return
	}

	if *cacheGC {
		if *cacheDir == "" {
			fmt.Fprintln(os.Stderr, "ipcp: -cache-gc requires -cache-dir")
			os.Exit(2)
		}
		st, err := ipcp.CacheGC(*cacheDir, *cacheBudget)
		if err != nil {
			cli.Fatal("ipcp", err)
		}
		fmt.Println(st)
		return
	}

	if *serverAddr != "" {
		if *all || *cloneFlag || *verify || *cacheDir != "" || *baseline != "" || *remoteCache != "" {
			fmt.Fprintln(os.Stderr, "ipcp: -server supports the plain analysis path (-emit, -constants, -stats, -trace-passes); run -all/-clone/-verify/-cache-dir/-remote-cache locally")
			os.Exit(2)
		}
		if *metricsDump {
			runRemoteMetrics(*serverAddr)
			return
		}
		cfg := ipcp.Config{
			Jump:                j,
			ReturnJumpFunctions: !*noRet,
			MOD:                 !*noMod,
			Complete:            *complete,
			Workers:             *workers,
		}
		if *suiteName == "" && len(flag.Args()) > 1 {
			// Several files: one /v1/batch request; a fleet daemon fans
			// them out across its worker shards.
			if *emit || *stats {
				fmt.Fprintln(os.Stderr, "ipcp: -emit and -stats work on a single input; batch mode prints per-file reports")
				os.Exit(2)
			}
			runRemoteBatch(*serverAddr, flag.Args(), cfg, remoteOpts{
				constants:   *listConstants,
				tracePasses: *tracePasses,
			})
			return
		}
		src, name, err := cli.Source(*suiteName, *scale, flag.Args())
		if err != nil {
			cli.Fatal("ipcp", err)
		}
		runRemote(*serverAddr, src, name, cfg, remoteOpts{
			emit:        *emit,
			constants:   *listConstants,
			stats:       *stats,
			tracePasses: *tracePasses,
		})
		return
	}

	prog, name, err := cli.Load(*suiteName, *scale, flag.Args())
	if err != nil {
		cli.Fatal("ipcp", err)
	}

	if *stats {
		st := prog.Stats()
		fmt.Printf("%s: %d lines, %d procedures, %d call sites, %.1f mean / %.1f median lines per procedure\n",
			name, st.Lines, st.Procedures, st.CallSites, st.MeanLinesPerProc, st.MedianLinesPerProc)
	}

	if *all {
		var cfgs []ipcp.Config
		for _, j := range ipcp.JumpFunctions {
			cfgs = append(cfgs, ipcp.Config{
				Jump:                j,
				ReturnJumpFunctions: !*noRet,
				MOD:                 !*noMod,
				Complete:            *complete,
				Workers:             *workers,
			})
		}
		// The four flavors run sequentially through one shared cache:
		// the first flavor writes the flavor-split stage-1 records, and
		// the s1-hits column shows the later flavors reusing them.
		cache := openCache(*cacheDir, *remoteCache, *walOn)
		fmt.Printf("%-16s  %12s  %10s  %8s  %6s\n", "jump function", "substituted", "constants", "s1-hits", "hits")
		for _, cfg := range cfgs {
			rep, _ := prog.AnalyzeIncremental(cfg, nil, cache)
			st := rep.Incremental
			fmt.Printf("%-16s  %12d  %10d  %8d  %6d\n",
				cfg.Jump, rep.TotalSubstituted, rep.TotalConstants, st.Stage1Hits, st.CacheHits)
		}
		closeCache(cache)
		if *tracePasses {
			fmt.Println(cache.Stats())
		}
		return
	}

	if *cloneFlag {
		out := prog.AnalyzeWithCloning(ipcp.Config{
			Jump:                j,
			ReturnJumpFunctions: !*noRet,
			MOD:                 !*noMod,
			Workers:             *workers,
			Debug:               *debug,
		}, ipcp.CloneOptions{})
		fmt.Printf("%s: goal-directed cloning with %s jump functions\n", name, j)
		fmt.Printf("  before: %d constants, %d references\n",
			out.Base.TotalConstants, out.Base.TotalSubstituted)
		fmt.Printf("  after:  %d constants, %d references (%d clones in %d rounds)\n",
			out.Final.TotalConstants, out.Final.TotalSubstituted, out.TotalClones, out.Rounds)
		if *tracePasses {
			fmt.Print(out.Final.PassTrace())
		}
		return
	}
	cfg := ipcp.Config{
		Jump:                j,
		ReturnJumpFunctions: !*noRet,
		MOD:                 !*noMod,
		Complete:            *complete,
		NoWarmStart:         !*warm,
		Workers:             *workers,
		Debug:               *debug,
	}
	var (
		rep   *ipcp.Report
		cache *ipcp.SummaryCache
	)
	if *cacheDir != "" || *baseline != "" || *remoteCache != "" {
		rep, cache = analyzeIncremental(prog, cfg, *cacheDir, *remoteCache, *baseline, *walOn)
	} else {
		rep = prog.Analyze(cfg)
	}
	printSummary(name, cfg, rep)

	if *tracePasses {
		fmt.Print(rep.PassTrace())
		if cache != nil {
			fmt.Println(cache.Stats())
		}
	}

	if *emit {
		src, n, err := prog.TransformedSource(rep)
		if err != nil {
			cli.Fatal("ipcp", err)
		}
		fmt.Printf("! transformed source: %d references substituted\n%s", n, src)
	}

	if *verify {
		if verifyAgainstExecution(prog, rep) {
			fmt.Println("  verification: every constant matches observed execution")
		} else {
			os.Exit(1)
		}
	}

	if *listConstants {
		printConstants(rep)
	}
}

// printSummary prints the standard report header and totals; the
// configuration decides which caveat suffixes appear.
func printSummary(name string, cfg ipcp.Config, rep *ipcp.Report) {
	fmt.Printf("%s: %s jump functions", name, cfg.Jump)
	if !cfg.ReturnJumpFunctions {
		fmt.Print(", no return JFs")
	}
	if !cfg.MOD {
		fmt.Print(", no MOD")
	}
	if cfg.Complete {
		fmt.Printf(", complete propagation (%d DCE rounds)", rep.DCERounds)
	}
	fmt.Println()
	fmt.Printf("  interprocedural constants: %d\n", rep.TotalConstants)
	fmt.Printf("  references substituted:    %d\n", rep.TotalSubstituted)
	fmt.Printf("  solver passes:             %d (%d jump-function evaluations)\n",
		rep.SolverPasses, rep.JFEvaluations)
	if st := rep.Incremental; st != nil {
		fmt.Printf("  incremental: %d/%d procedures re-analyzed, %d hits, %d misses (%.1f%% hit rate), %d stage-1 hits\n",
			st.Reanalyzed, st.TotalProcedures, st.CacheHits, st.CacheMisses, 100*st.HitRate(), st.Stage1Hits)
		solve := "cold"
		if st.WarmStarted {
			solve = "warm"
		}
		fmt.Printf("  re-solve:    %s, %d-procedure cone, worklist %d seeded / %d visited / %d enqueued\n",
			solve, st.ConeProcedures, st.WorklistSeeded, st.WorklistVisited, st.WorklistEnqueued)
	}
}

// printConstants lists every CONSTANTS(p) entry (-constants).
func printConstants(rep *ipcp.Report) {
	for _, p := range rep.Procedures {
		if len(p.Constants) == 0 {
			continue
		}
		fmt.Printf("  CONSTANTS(%s):  [%d references substituted]\n", p.Name, p.Substituted)
		for _, c := range p.Constants {
			kind := "parameter"
			if c.Global {
				kind = "global"
			}
			fmt.Printf("    %-12s = %-8d (%s)\n", c.Name, c.Value, kind)
		}
	}
}

// openCache builds the summary cache the flags describe: a local tier
// (on disk under cacheDir when given, else in memory) with an optional
// shared remote tier layered behind it. With a cache directory and the
// WAL on (the default), puts are journaled before they are acknowledged
// and a journal a crashed run left behind is replayed first — the note
// on stderr says how much. Remote failures only cost recomputation,
// never correctness.
func openCache(cacheDir, remoteURL string, walOn bool) *ipcp.SummaryCache {
	if cacheDir != "" && walOn {
		cache, replay, err := ipcp.NewDurableCache(ipcp.DurableCacheOptions{
			Dir:       cacheDir,
			RemoteURL: remoteURL,
		})
		if err != nil {
			cli.Fatal("ipcp", err)
		}
		if replay.Replayed > 0 || replay.Corrupt > 0 {
			fmt.Fprintf(os.Stderr, "ipcp: wal recovery: %d records replayed, %d already present, %d corrupt\n",
				replay.Replayed, replay.Skipped, replay.Corrupt)
		}
		return cache
	}
	var (
		local *ipcp.SummaryCache
		err   error
	)
	if cacheDir != "" {
		if local, err = ipcp.NewDiskCache(cacheDir); err != nil {
			cli.Fatal("ipcp", err)
		}
	} else {
		local = ipcp.NewMemoryCache()
	}
	if remoteURL == "" {
		return local
	}
	return ipcp.NewTieredCache(local, ipcp.NewRemoteCache(remoteURL))
}

// closeCache flushes and closes the cache at exit, surfacing any
// write-back or journal error the analysis could not return.
func closeCache(cache *ipcp.SummaryCache) {
	if err := cache.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "ipcp: cache close: %v\n", err)
	}
}

// analyzeIncremental runs the program-database path: open the summary
// cache the flags describe, seed it from the previous on-disk snapshot
// and/or an in-process baseline analysis, analyze the program
// incrementally, and persist the new snapshot. The snapshot file is
// named by the configuration's full (flavor) cache key, so runs under
// different flags never cross-contaminate — stage-1 sharing across
// flavors happens inside the cache, not through snapshots.
func analyzeIncremental(prog *ipcp.Program, cfg ipcp.Config, cacheDir, remoteURL, baseline string, walOn bool) (*ipcp.Report, *ipcp.SummaryCache) {
	cache := openCache(cacheDir, remoteURL, walOn)

	var prev *ipcp.Snapshot
	snapPath := ""
	if cacheDir != "" {
		snapPath = filepath.Join(cacheDir, "snapshot-"+ipcp.FlavorCacheKey(cfg)[:16]+".snap")
		if s, err := ipcp.LoadSnapshot(snapPath, cache); err == nil {
			prev = s
		}
	}
	if baseline != "" {
		base, err := ipcp.LoadFile(baseline)
		if err != nil {
			cli.Fatal("ipcp", err)
		}
		_, prev = base.AnalyzeIncremental(cfg, prev, cache)
	}

	rep, snap := prog.AnalyzeIncremental(cfg, prev, cache)
	if snapPath != "" {
		// A delta chain: an edit appends the changed stamps instead of
		// rewriting the whole index.
		if _, err := snap.SaveChain(snapPath); err != nil {
			cli.Fatal("ipcp", err)
		}
	}
	closeCache(cache)
	return rep, cache
}

// verifyAgainstExecution runs the differential oracle over three input
// seeds and reports any constant execution contradicts.
func verifyAgainstExecution(prog *ipcp.Program, rep *ipcp.Report) bool {
	ok := true
	for seed := int64(0); seed < 3; seed++ {
		for _, v := range prog.VerifyConstants(rep, ipcp.ExecOptions{InputSeed: seed, Fuel: 50_000_000}) {
			fmt.Fprintf(os.Stderr, "  VIOLATION (seed %d): %s\n", seed, v)
			ok = false
		}
	}
	return ok
}
