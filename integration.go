package ipcp

import (
	"ipcp/internal/analysis/inline"
	"ipcp/internal/core"
	"ipcp/internal/ir/irbuild"
	"ipcp/internal/pass"
)

// IntegrationBaseline runs the paper's §5 comparison, for which "data
// is not yet available" in 1993: Wegman & Zadeck proposed finding
// interprocedural constants by *procedure integration* (inlining)
// followed by ordinary intraprocedural constant propagation. Because
// integration makes call paths explicit, it can find strictly more
// constants than the jump-function framework, which meets the values of
// all call sites into a single CONSTANTS set per procedure.
//
// It returns four numbers over this program:
//
//	ipcp        — substitutions under the polynomial jump-function
//	              configuration (return JFs + MOD), i.e. the framework
//	              at full strength;
//	integration — substitutions found by intraprocedural propagation
//	              after inlining every non-recursive call;
//	intra       — substitutions of plain intraprocedural propagation
//	              without inlining (Table 3, column 4);
//	inlinedSites — call sites the integrator expanded.
func (p *Program) IntegrationBaseline() (ipcp, integration, intra, inlinedSites int) {
	ipcp = core.Analyze(p.sp, core.Config{
		Jump: Polynomial.kind(), ReturnJFs: true, MOD: true,
	}).TotalSubstituted
	intra = core.AnalyzeIntraprocedural(p.sp).TotalSubstituted

	ctx := pass.NewContext(irbuild.Build(p.sp))
	ip := inline.NewPass(nil)
	if err := pass.Run(ctx, pass.NewRegistry(), pass.NewPipeline("integration", ip)); err != nil {
		panic("ipcp: " + err.Error())
	}
	integration = core.AnalyzeIntraproceduralIR(ctx.Program()).TotalSubstituted
	inlinedSites = ip.Stats().Inlined
	return ipcp, integration, intra, inlinedSites
}
